// StressLog daemon (paper §3.D).
//
// Offline, on-demand stress testing: the machine is taken out of
// rotation, a workload suite (benchmarks + hand-coded stress kernels)
// is run through the shmoo protocol at each candidate frequency, the
// DRAM refresh interval is swept, and the output is a vector of new
// safe V-F-R margins handed to the higher layers. A HealthLog instance
// runs in parallel and records every event observed during the cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "daemons/healthlog.h"
#include "hwmodel/platform.h"
#include "stress/shmoo.h"

namespace uniserver::daemons {

/// "Input stress target parameters from the higher system layers."
struct StressTargetParams {
  std::vector<hw::WorkloadSignature> suite;
  /// Guard band subtracted from the observed crash offset (percent).
  double guard_percent{1.0};
  /// Candidate frequencies to characterize (empty: nominal only).
  std::vector<MegaHertz> freqs;
  /// Candidate refresh intervals, ascending.
  std::vector<Seconds> refresh_candidates;
  /// Accept a refresh interval only if the expected resident weak
  /// cells across the node stay below this (absorbed by the reliable
  /// domain / guest-level tolerance).
  double max_expected_dram_errors{2.0};
  /// Temperature the DRAM margin must hold at (DIMM sensor reading in
  /// an air-conditioned machine room, with headroom).
  Celsius dram_worst_case_temp{Celsius{30.0}};
};

/// "Output vector containing the new safe system V-F-R margins."
struct SafeMargins {
  struct FreqPoint {
    MegaHertz freq{MegaHertz{0.0}};
    Volt safe_vdd{Volt{0.0}};
    double crash_offset_percent{0.0};  ///< observed first-core crash
    double safe_offset_percent{0.0};   ///< crash minus guard band
  };
  std::vector<FreqPoint> points;
  Seconds safe_refresh{Seconds::from_ms(64.0)};
  Seconds characterized_at{Seconds{0.0}};
  std::uint64_t ecc_events_observed{0};

  /// The point characterized for `freq` (nearest match).
  const FreqPoint& point_for(MegaHertz freq) const;
};

class StressLog {
 public:
  StressLog(stress::ShmooConfig shmoo, std::uint64_t seed);

  /// Runs one full offline stress cycle on the node. Events observed
  /// during the cycle are recorded into `health` (may be null).
  SafeMargins run_cycle(const hw::ServerNode& node,
                        const StressTargetParams& params,
                        Seconds now, HealthLog* health);

  /// Picks the longest candidate refresh interval whose expected decay
  /// errors per pass stay under the budget at the worst-case temp.
  static Seconds safe_refresh_interval(const hw::ServerNode& node,
                                       const StressTargetParams& params);

  /// Number of cycles run so far (a real deployment would log these).
  int cycles() const { return cycles_; }

 private:
  stress::ShmooCharacterizer characterizer_;
  Rng rng_;
  int cycles_{0};
};

/// Default stress parameters: the SPEC suite plus the built-in viruses,
/// frequency ladder {100%, 85%, 70%, 50%} of nominal, refresh ladder
/// 64 ms .. 5 s.
StressTargetParams default_stress_params(const hw::ServerNode& node);

}  // namespace uniserver::daemons
