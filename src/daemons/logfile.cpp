#include "daemons/logfile.h"

#include <cstdio>
#include <istream>
#include <map>
#include <sstream>
#include <string>

namespace uniserver::daemons {

namespace {

std::map<std::string, std::string> parse_fields(const std::string& line,
                                                std::size_t offset) {
  std::map<std::string, std::string> fields;
  std::istringstream in(line.substr(offset));
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

bool get_double(const std::map<std::string, std::string>& fields,
                const std::string& key, double& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  char* end = nullptr;
  out = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str();
}

bool get_u64(const std::map<std::string, std::string>& fields,
             const std::string& key, std::uint64_t& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  out = std::strtoull(it->second.c_str(), nullptr, 10);
  return true;
}

const char* component_token(Component component) {
  return to_string(component);
}

std::optional<Component> component_from(const std::string& token) {
  if (token == "core") return Component::kCore;
  if (token == "cache") return Component::kCache;
  if (token == "dram") return Component::kDram;
  return std::nullopt;
}

std::optional<Severity> severity_from(const std::string& token) {
  if (token == "correctable") return Severity::kCorrectable;
  if (token == "uncorrectable") return Severity::kUncorrectable;
  if (token == "crash") return Severity::kCrash;
  return std::nullopt;
}

}  // namespace

std::string serialize(const InfoVector& vector) {
  char buffer[320];
  std::snprintf(
      buffer, sizeof buffer,
      "IV t=%.3f vdd=%.4f freq=%.1f refresh=%.4f pkg_w=%.3f mem_w=%.3f "
      "temp_c=%.2f ipc=%.3f util=%.3f ce=%llu ue=%llu src=%s",
      vector.timestamp.value, vector.eop.vdd.value, vector.eop.freq.value,
      vector.eop.refresh.value, vector.sensors.package_power.value,
      vector.sensors.memory_power.value, vector.sensors.temperature.value,
      vector.ipc, vector.utilization,
      static_cast<unsigned long long>(vector.correctable_errors),
      static_cast<unsigned long long>(vector.uncorrectable_errors),
      vector.source.empty() ? "unknown" : vector.source.c_str());
  return buffer;
}

std::string serialize(const ErrorEvent& event) {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "EE t=%.3f comp=%s sev=%s unit=%d",
                event.timestamp.value, component_token(event.component),
                to_string(event.severity), event.unit);
  return buffer;
}

std::optional<InfoVector> parse_info_vector(const std::string& line) {
  if (line.rfind("IV ", 0) != 0) return std::nullopt;
  const auto fields = parse_fields(line, 3);
  InfoVector vector;
  double value = 0.0;
  if (!get_double(fields, "t", value)) return std::nullopt;
  vector.timestamp = Seconds{value};
  if (get_double(fields, "vdd", value)) vector.eop.vdd = Volt{value};
  if (get_double(fields, "freq", value)) vector.eop.freq = MegaHertz{value};
  if (get_double(fields, "refresh", value)) {
    vector.eop.refresh = Seconds{value};
  }
  if (get_double(fields, "pkg_w", value)) {
    vector.sensors.package_power = Watt{value};
  }
  if (get_double(fields, "mem_w", value)) {
    vector.sensors.memory_power = Watt{value};
  }
  if (get_double(fields, "temp_c", value)) {
    vector.sensors.temperature = Celsius{value};
  }
  get_double(fields, "ipc", vector.ipc);
  get_double(fields, "util", vector.utilization);
  get_u64(fields, "ce", vector.correctable_errors);
  get_u64(fields, "ue", vector.uncorrectable_errors);
  const auto src = fields.find("src");
  if (src != fields.end()) vector.source = src->second;
  return vector;
}

std::optional<ErrorEvent> parse_error_event(const std::string& line) {
  if (line.rfind("EE ", 0) != 0) return std::nullopt;
  const auto fields = parse_fields(line, 3);
  ErrorEvent event;
  double value = 0.0;
  if (!get_double(fields, "t", value)) return std::nullopt;
  event.timestamp = Seconds{value};
  const auto comp = fields.find("comp");
  const auto sev = fields.find("sev");
  if (comp == fields.end() || sev == fields.end()) return std::nullopt;
  const auto component = component_from(comp->second);
  const auto severity = severity_from(sev->second);
  if (!component || !severity) return std::nullopt;
  event.component = *component;
  event.severity = *severity;
  double unit = 0.0;
  if (get_double(fields, "unit", unit)) {
    event.unit = static_cast<int>(unit);
  }
  return event;
}

void dump_logfile(const HealthLog& log, std::ostream& out) {
  for (const auto& vector : log.vectors()) {
    out << serialize(vector) << '\n';
  }
  for (const auto& event : log.errors()) {
    out << serialize(event) << '\n';
  }
}

std::size_t load_logfile(std::istream& in, HealthLog& log) {
  std::size_t parsed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (auto vector = parse_info_vector(line)) {
      log.record(*vector);
      ++parsed;
    } else if (auto event = parse_error_event(line)) {
      log.record_error(*event);
      ++parsed;
    }
  }
  return parsed;
}

}  // namespace uniserver::daemons
