#include "daemons/status_interface.h"

#include <cstdio>

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace uniserver::daemons {

NodeStatus collect_status(const hw::ServerNode& node,
                          const HealthLog& healthlog,
                          const Predictor& predictor,
                          const SafeMargins& margins,
                          const hw::WorkloadSignature& current, Seconds now,
                          int retired_cores, int isolated_channels) {
  NodeStatus status;
  status.timestamp = now;
  status.eop = node.eop();

  const auto& chip = node.spec().chip;
  const double applied_offset =
      hw::undervolt_percent(chip.vdd_nominal, status.eop.vdd);
  if (!margins.points.empty()) {
    const auto& point = margins.point_for(status.eop.freq);
    if (point.safe_offset_percent > 0.0) {
      status.margin_utilization =
          applied_offset / point.safe_offset_percent;
    }
    const double nominal_ms = node.spec().dimm.nominal_refresh.millis();
    const double safe_relaxation =
        margins.safe_refresh.millis() - nominal_ms;
    if (safe_relaxation > 0.0) {
      status.refresh_utilization =
          (status.eop.refresh.millis() - nominal_ms) / safe_relaxation;
    }
  }

  status.correctable_rate_per_s = healthlog.error_rate_per_s(now);
  status.total_correctable = healthlog.total_correctable();
  status.total_uncorrectable = healthlog.total_uncorrectable();

  PredictorFeatures features;
  features.undervolt_percent = applied_offset;
  features.freq_ratio = status.eop.freq / chip.freq_nominal;
  features.didt_stress = current.didt_stress;
  features.activity = current.activity;
  const auto op = node.chip().power().steady_state(
      status.eop.vdd, status.eop.freq, current.activity,
      node.chip().num_cores());
  features.temp_c = op.temp.value;
  status.predicted_crash_probability = predictor.crash_probability(features);

  constexpr double kYear = 365.0 * 24.0 * 3600.0;
  status.age_years = node.chip().age().value / kYear;
  status.retired_cores = retired_cores;
  status.isolated_channels = isolated_channels;
  return status;
}

std::string serialize(const NodeStatus& status) {
  char buffer[360];
  std::snprintf(
      buffer, sizeof buffer,
      "ST t=%.3f vdd=%.4f freq=%.1f refresh=%.4f margin_util=%.3f "
      "refresh_util=%.3f ce_rate=%.5f ce=%llu ue=%llu p_crash=%.4e "
      "age_y=%.2f retired_cores=%d isolated_ch=%d",
      status.timestamp.value, status.eop.vdd.value, status.eop.freq.value,
      status.eop.refresh.value, status.margin_utilization,
      status.refresh_utilization, status.correctable_rate_per_s,
      static_cast<unsigned long long>(status.total_correctable),
      static_cast<unsigned long long>(status.total_uncorrectable),
      status.predicted_crash_probability, status.age_years,
      status.retired_cores, status.isolated_channels);
  return buffer;
}

std::string telemetry_snapshot_json() {
  return telemetry::to_json(telemetry::MetricsRegistry::global(),
                            &telemetry::TraceBuffer::global());
}

}  // namespace uniserver::daemons
