// On-disk representation of the HealthLog "system logfile" (paper
// §3.C: the monitor "records runtime system metrics in the form of an
// information vector, stored in a system logfile").
//
// Line-oriented key=value records, one InfoVector or ErrorEvent per
// line, greppable and order-preserving:
//
//   IV t=12.000 vdd=0.850 freq=2400 refresh=1.500 pkg_w=21.3 mem_w=10.1
//      temp_c=47.2 ipc=1.30 util=0.75 ce=3 ue=0 src=healthlog  (one line)
//   EE t=13.000 comp=cache sev=correctable unit=2
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "daemons/healthlog.h"
#include "daemons/info_vector.h"

namespace uniserver::daemons {

/// One-line serialization of an InfoVector.
std::string serialize(const InfoVector& vector);

/// One-line serialization of an ErrorEvent.
std::string serialize(const ErrorEvent& event);

/// Parses a line produced by serialize(InfoVector); nullopt on a
/// malformed or non-IV line.
std::optional<InfoVector> parse_info_vector(const std::string& line);

/// Parses a line produced by serialize(ErrorEvent).
std::optional<ErrorEvent> parse_error_event(const std::string& line);

/// Dumps a HealthLog's retained vectors and events, in timestamp order
/// within each stream (vectors first, then events).
void dump_logfile(const HealthLog& log, std::ostream& out);

/// Replays a logfile into a HealthLog (subscribers fire as usual).
/// Returns the number of lines successfully parsed.
std::size_t load_logfile(std::istream& in, HealthLog& log);

}  // namespace uniserver::daemons
