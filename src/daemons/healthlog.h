// HealthLog daemon (paper §3.C).
//
// Runtime monitor recording system metrics as information vectors in a
// bounded in-memory logfile. Provides the two services the paper
// specifies: (a) event-driven — subscribers are notified on error
// events; (b) on-demand — higher layers (Predictor, Hypervisor) query
// snapshots and windowed aggregates. When the correctable-error rate
// crosses a threshold, the HealthLog raises the "re-characterize"
// signal that triggers a new StressLog cycle (§3: "if the number of
// errors rises above a certain threshold a new stress-test cycle may be
// triggered").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/units.h"
#include "daemons/info_vector.h"

namespace uniserver::daemons {

class HealthLog {
 public:
  struct Config {
    std::size_t capacity{4096};          ///< bounded logfile length
    double error_rate_threshold_per_s{0.05};
    Seconds rate_window{Seconds{120.0}};
    /// Minimum spacing between re-characterization triggers. A
    /// StressLog cycle takes the machine offline (paper SS3.D), so the
    /// trigger must not fire on every window that stays hot.
    Seconds recharacterize_cooldown{Seconds{6.0 * 3600.0}};
  };

  /// Windowed aggregate returned by the on-demand service.
  struct Aggregate {
    std::size_t vectors{0};
    std::uint64_t correctable_errors{0};
    std::uint64_t uncorrectable_errors{0};
    std::size_t crash_events{0};
    double mean_power_w{0.0};
    double mean_temp_c{0.0};
    double mean_ipc{0.0};
  };

  using ErrorListener = std::function<void(const ErrorEvent&)>;
  using RecharacterizeListener = std::function<void(Seconds)>;

  HealthLog() : HealthLog(Config{}) {}
  explicit HealthLog(Config config);

  /// Records a periodic monitoring vector.
  void record(const InfoVector& vector);

  /// Daemon restart: the bounded in-memory logfile (vectors and error
  /// events) is lost and the re-characterization debounce resets.
  /// Subscribers stay wired and the lifetime totals survive — they
  /// model counters persisted outside the daemon process.
  void clear();

  /// Records an error event; fires event-driven subscribers and, when
  /// the windowed rate crosses the threshold, the re-characterize hook.
  void record_error(const ErrorEvent& event);

  /// Event-driven service: subscribe to every error event.
  void subscribe_errors(ErrorListener listener);

  /// Subscribe to threshold crossings (StressLog trigger).
  void subscribe_recharacterize(RecharacterizeListener listener);

  /// On-demand service: most recent vector (default-constructed if none).
  InfoVector latest() const;

  /// On-demand service: aggregate of vectors/events since `since`.
  Aggregate aggregate(Seconds since) const;

  /// Correctable-error rate over the trailing window ending at `now`.
  double error_rate_per_s(Seconds now) const;

  bool threshold_exceeded(Seconds now) const;

  const std::deque<InfoVector>& vectors() const { return vectors_; }
  const std::deque<ErrorEvent>& errors() const { return errors_; }
  std::uint64_t total_correctable() const { return total_correctable_; }
  std::uint64_t total_uncorrectable() const { return total_uncorrectable_; }

 private:
  Config config_;
  std::deque<InfoVector> vectors_;
  std::deque<ErrorEvent> errors_;
  std::vector<ErrorListener> error_listeners_;
  std::vector<RecharacterizeListener> recharacterize_listeners_;
  std::uint64_t total_correctable_{0};
  std::uint64_t total_uncorrectable_{0};
  /// Debounce: do not re-raise the trigger until the window moves on.
  Seconds last_trigger_{Seconds{-1e18}};
};

}  // namespace uniserver::daemons
