#include "daemons/healthlog.h"

#include <cstdio>

#include "telemetry/telemetry.h"

namespace uniserver::daemons {

namespace {
struct HealthLogMetrics {
  telemetry::Counter& vectors = telemetry::counter(
      "daemon.healthlog.vectors", "records",
      "Periodic monitoring vectors recorded");
  telemetry::Counter& correctable = telemetry::counter(
      "daemon.healthlog.errors_correctable", "events",
      "Correctable error events logged");
  telemetry::Counter& uncorrectable = telemetry::counter(
      "daemon.healthlog.errors_uncorrectable", "events",
      "Uncorrectable error events logged");
  telemetry::Counter& triggers = telemetry::counter(
      "daemon.healthlog.recharacterize_triggers", "events",
      "Re-characterization triggers raised (rate over threshold)");
};

HealthLogMetrics& metrics() {
  static HealthLogMetrics m;
  return m;
}
}  // namespace

const char* to_string(Component component) {
  switch (component) {
    case Component::kCore:
      return "core";
    case Component::kCache:
      return "cache";
    case Component::kDram:
      return "dram";
  }
  return "?";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kCorrectable:
      return "correctable";
    case Severity::kUncorrectable:
      return "uncorrectable";
    case Severity::kCrash:
      return "crash";
  }
  return "?";
}

HealthLog::HealthLog(Config config) : config_(config) {}

void HealthLog::record(const InfoVector& vector) {
  vectors_.push_back(vector);
  while (vectors_.size() > config_.capacity) vectors_.pop_front();
  metrics().vectors.add();
}

void HealthLog::clear() {
  vectors_.clear();
  errors_.clear();
  last_trigger_ = Seconds{-1e18};
}

void HealthLog::record_error(const ErrorEvent& event) {
  errors_.push_back(event);
  while (errors_.size() > config_.capacity) errors_.pop_front();
  if (event.severity == Severity::kCorrectable) {
    ++total_correctable_;
    metrics().correctable.add();
  } else {
    ++total_uncorrectable_;
    metrics().uncorrectable.add();
  }
  for (const auto& listener : error_listeners_) listener(event);

  if (threshold_exceeded(event.timestamp)) {
    if (event.timestamp.value - last_trigger_.value >=
        config_.recharacterize_cooldown.value) {
      last_trigger_ = event.timestamp;
      metrics().triggers.add();
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.5f",
                    error_rate_per_s(event.timestamp));
      telemetry::trace(event.timestamp, "healthlog", "recharacterize",
                       {{"rate_per_s", rate},
                        {"component", to_string(event.component)}});
      for (const auto& listener : recharacterize_listeners_) {
        listener(event.timestamp);
      }
    }
  }
}

void HealthLog::subscribe_errors(ErrorListener listener) {
  error_listeners_.push_back(std::move(listener));
}

void HealthLog::subscribe_recharacterize(RecharacterizeListener listener) {
  recharacterize_listeners_.push_back(std::move(listener));
}

InfoVector HealthLog::latest() const {
  if (vectors_.empty()) return InfoVector{};
  return vectors_.back();
}

HealthLog::Aggregate HealthLog::aggregate(Seconds since) const {
  Aggregate aggregate;
  double power = 0.0;
  double temp = 0.0;
  double ipc = 0.0;
  for (const auto& vector : vectors_) {
    if (vector.timestamp < since) continue;
    ++aggregate.vectors;
    aggregate.correctable_errors += vector.correctable_errors;
    aggregate.uncorrectable_errors += vector.uncorrectable_errors;
    power += vector.sensors.package_power.value +
             vector.sensors.memory_power.value;
    temp += vector.sensors.temperature.value;
    ipc += vector.ipc;
  }
  if (aggregate.vectors > 0) {
    const auto n = static_cast<double>(aggregate.vectors);
    aggregate.mean_power_w = power / n;
    aggregate.mean_temp_c = temp / n;
    aggregate.mean_ipc = ipc / n;
  }
  for (const auto& event : errors_) {
    if (event.timestamp < since) continue;
    if (event.severity == Severity::kCrash) ++aggregate.crash_events;
  }
  return aggregate;
}

double HealthLog::error_rate_per_s(Seconds now) const {
  const Seconds window = config_.rate_window;
  if (window.value <= 0.0) return 0.0;
  const double cutoff = now.value - window.value;
  std::size_t count = 0;
  for (auto it = errors_.rbegin(); it != errors_.rend(); ++it) {
    if (it->timestamp.value < cutoff) break;
    if (it->severity == Severity::kCorrectable) ++count;
  }
  return static_cast<double>(count) / window.value;
}

bool HealthLog::threshold_exceeded(Seconds now) const {
  return error_rate_per_s(now) > config_.error_rate_threshold_per_s;
}

}  // namespace uniserver::daemons
