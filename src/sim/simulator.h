// Discrete-event simulation engine.
//
// The UniServer ecosystem models (daemons, hypervisor control loops,
// cloud orchestration) are driven by simulated time, never wall-clock
// time, so whole-system experiments are deterministic. Events are
// ordered by (time, sequence-number) which makes same-time events FIFO.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace uniserver::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Event-queue simulator. Not thread-safe (the ecosystem is a
/// single-threaded model by design).
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  Seconds now() const { return now_; }

  /// Schedules `cb` to fire `delay` from now. Negative delays clamp to 0.
  EventId schedule_in(Seconds delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (clamped to now).
  EventId schedule_at(Seconds at, Callback cb);

  /// Schedules `cb` every `period`, starting one period from now, until
  /// cancelled. Returns the id to cancel the whole series.
  EventId schedule_every(Seconds period, Callback cb);

  /// Cancels a pending event (or periodic series); returns true if it
  /// was still pending.
  bool cancel(EventId id);

  /// Runs the next event; returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or `limit` events fire.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= `until`, then advances now() to
  /// `until` even if the queue still holds later events.
  std::size_t run_until(Seconds until);

  /// Pending event count (cancelled-but-not-popped events excluded).
  std::size_t pending() const;

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& other) const {
      if (at.value != other.at.value) return at.value > other.at.value;
      return seq > other.seq;
    }
  };

  struct Periodic {
    Seconds period;
    Callback cb;
  };

  EventId enqueue(Seconds at, Callback cb);
  void fire(const Entry& entry);

  Seconds now_{0.0};
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  // Callbacks are stored out of line so Entry stays cheap to copy in the heap.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_map<EventId, Periodic> periodics_;
};

}  // namespace uniserver::sim
