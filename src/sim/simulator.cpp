#include "sim/simulator.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace uniserver::sim {

namespace {
// Registered once, then every increment is one relaxed atomic op.
struct SimMetrics {
  telemetry::Counter& scheduled = telemetry::counter(
      "sim.events_scheduled", "events", "Events enqueued on the DES queue");
  telemetry::Counter& fired = telemetry::counter(
      "sim.events_fired", "events", "Event callbacks executed");
  telemetry::Counter& cancelled = telemetry::counter(
      "sim.events_cancelled", "events", "Pending events cancelled");
  telemetry::Gauge& pending = telemetry::gauge(
      "sim.pending_events", "events", "Events currently pending");
  telemetry::Gauge& now_s = telemetry::gauge(
      "sim.now_s", "s", "Simulated clock of the most recent Simulator");
};

SimMetrics& metrics() {
  static SimMetrics m;
  return m;
}
}  // namespace

EventId Simulator::enqueue(Seconds at, Callback cb) {
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  metrics().scheduled.add();
  metrics().pending.set(static_cast<double>(callbacks_.size()));
  return id;
}

EventId Simulator::schedule_in(Seconds delay, Callback cb) {
  const Seconds at{now_.value + std::max(0.0, delay.value)};
  return enqueue(at, std::move(cb));
}

EventId Simulator::schedule_at(Seconds at, Callback cb) {
  return enqueue(Seconds{std::max(at.value, now_.value)}, std::move(cb));
}

EventId Simulator::schedule_every(Seconds period, Callback cb) {
  const EventId id =
      enqueue(Seconds{now_.value + period.value}, std::move(cb));
  // The callback is re-armed after each firing; keep the period on record.
  auto it = callbacks_.find(id);
  periodics_.emplace(id, Periodic{period, it->second});
  return id;
}

bool Simulator::cancel(EventId id) {
  const bool was_pending = callbacks_.contains(id);
  if (was_pending) {
    cancelled_.insert(id);
    callbacks_.erase(id);
    periodics_.erase(id);
    metrics().cancelled.add();
    metrics().pending.set(static_cast<double>(callbacks_.size()));
  }
  return was_pending;
}

void Simulator::fire(const Entry& entry) {
  auto it = callbacks_.find(entry.id);
  if (it == callbacks_.end()) return;  // cancelled
  Callback cb = it->second;
  auto periodic = periodics_.find(entry.id);
  if (periodic != periodics_.end()) {
    // Re-arm under the same id so cancel(id) keeps working.
    queue_.push(Entry{Seconds{now_.value + periodic->second.period.value},
                      next_seq_++, entry.id});
  } else {
    callbacks_.erase(it);
  }
  metrics().fired.add();
  metrics().now_s.set(now_.value);
  metrics().pending.set(static_cast<double>(callbacks_.size()));
  cb();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (cancelled_.contains(entry.id)) {
      cancelled_.erase(entry.id);
      continue;
    }
    if (!callbacks_.contains(entry.id)) continue;
    now_ = entry.at;
    fire(entry);
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(Seconds until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    if (cancelled_.contains(entry.id)) {
      queue_.pop();
      cancelled_.erase(entry.id);
      continue;
    }
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.at.value > until.value) break;
    queue_.pop();
    now_ = entry.at;
    fire(entry);
    ++executed;
  }
  now_ = Seconds{std::max(now_.value, until.value)};
  return executed;
}

std::size_t Simulator::pending() const { return callbacks_.size(); }

}  // namespace uniserver::sim
