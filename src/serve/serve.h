// Request-level serving layer: the user-visible cost of an EOP.
//
// Everything below this layer trades guardband reclamation against
// *crash rate*; nothing models what "millions of users" actually feel.
// This module closes that gap (ROADMAP item 2): an open-loop request
// generator emits per-service Poisson streams over the placed VMs
// (rate shaped by the diurnal trace), a per-VM virtual-time vCPU queue
// services them with service times derived from the node's current
// V-F-R operating point, and a replica balancer spreads each service's
// load across its VM replicas with deterministic tie-breaking. EOP
// retreats, checkpoint restores, survivable-SDC hits and migration
// stop-and-copy pauses all surface as dispatch stalls that visibly
// fatten the latency tail — so EOP aggressiveness finally trades
// against p99/p999 and SLO violations rather than only crash rate
// (Krzywda et al. ground the V-F-to-latency coupling; see PAPERS.md).
//
// Determinism contract: all randomness flows through one Rng seeded by
// the caller, consumed in a fixed order (pending bursts sorted by time,
// then services in ascending id); queue state is virtual-time
// bookkeeping with no wall-clock reads, so runs reproduce bit-identical
// for any --jobs count (the fuzz campaign digests assert this).
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "hwmodel/platform.h"
#include "telemetry/metrics.h"
#include "trace/arrivals.h"
#include "trace/diurnal.h"

namespace uniserver::serve {

struct ServeConfig {
  /// The layer is opt-in: a disabled layer costs nothing and keeps
  /// every pre-existing campaign digest unchanged.
  bool enabled{false};
  std::uint64_t seed{0x5E12F00DULL};
  /// Open-loop request rate per vCPU at diurnal factor 1.0.
  double requests_per_vcpu_hz{0.4};
  /// Mean service demand at the nominal operating point (exponential).
  Seconds mean_service{Seconds{0.05}};
  /// VMs hash into this many replicated services (`vm_id % groups`);
  /// <= 1 gives every VM its own single-replica service.
  int replica_groups{8};
  /// Per-VM outstanding-request cap; arrivals beyond it are shed.
  std::size_t queue_cap{512};
  /// Latency SLO per SLA class (best-effort carries no SLO).
  Seconds slo_standard{Seconds{0.5}};
  Seconds slo_critical{Seconds{0.25}};
  /// Dispatch pause while a VM is restored from its checkpoint.
  Seconds restore_stall{Seconds{8.0}};
  /// Dispatch glitch when a VM absorbs a survivable SDC.
  Seconds hit_stall{Seconds{1.0}};
  /// Memory-stall share of service time at nominal refresh for a fully
  /// memory-bound workload; scales with the VM's mem_intensity and
  /// with the refresh interval (shorter refresh steals bandwidth).
  double refresh_overhead_nominal{0.08};
  /// Day shape of the request rate (only the factor fields are read).
  trace::DiurnalConfig diurnal{};
  /// Latency histogram range/resolution (milliseconds).
  double histogram_hi_ms{20000.0};
  std::size_t histogram_buckets{2000};
};

/// Cumulative serving books. Conservation (checked by the fuzz oracle):
///   generated == admitted + dropped_overload + dropped_unroutable
///   admitted  == completed + dropped_lost + outstanding()
struct ServeStats {
  std::uint64_t generated{0};  ///< emitted by generator + bursts
  std::uint64_t admitted{0};   ///< entered a VM queue
  std::uint64_t completed{0};  ///< virtual completion time has passed
  std::uint64_t dropped_overload{0};    ///< shed at the queue cap
  std::uint64_t dropped_unroutable{0};  ///< no live replica to route to
  /// In flight when the VM left (node crash, SDC kill, or departure).
  std::uint64_t dropped_lost{0};
  std::uint64_t slo_violations{0};  ///< standard + critical
  std::uint64_t slo_violations_critical{0};
  std::uint64_t stalls{0};  ///< dispatch stalls applied to queues
  double latency_sum_s{0.0};
  double max_latency_s{0.0};
};

/// Virtual-time FIFO queue over a VM's vCPUs (c parallel servers).
/// A request arriving at `t` starts on the earliest-free server (ties
/// to the lowest server index) and its sojourn is known immediately —
/// no event scheduling, just per-server busy horizons. With one vCPU
/// and exponential interarrivals/demands this is exactly M/M/1 (the
/// closed-form tests pin mean sojourn = 1/(mu - lambda)).
class VcpuQueue {
 public:
  VcpuQueue(int vcpus, std::size_t cap);

  struct Offer {
    bool admitted{false};
    Seconds completion{Seconds{0.0}};
    Seconds latency{Seconds{0.0}};
  };
  /// Admits a request arriving at `arrival` needing `service` busy
  /// time, unless `cap` requests are already outstanding.
  Offer offer(Seconds arrival, Seconds service);

  /// Dispatch pause at `at`: every server's busy horizon is pushed to
  /// at least `at` and then extended by `duration` (stop-and-copy,
  /// checkpoint restore, SDC glitch). Latencies already handed out are
  /// unchanged — a stall gates the *next* dispatches.
  void stall(Seconds at, Seconds duration);

  /// Retires requests whose completion is at or before `now`; returns
  /// how many completed.
  std::uint64_t drain(Seconds now);

  std::size_t outstanding() const { return in_flight_.size(); }
  /// Pending busy time beyond `now`, summed over servers — the load
  /// signal the replica balancer compares.
  Seconds backlog(Seconds now) const;

 private:
  std::vector<double> free_at_;  // per-server busy horizon (seconds)
  std::priority_queue<double, std::vector<double>, std::greater<>>
      in_flight_;  // outstanding completion times
  std::size_t cap_;
};

/// Deterministic least-backlog routing across a service's replicas:
/// smallest backlog wins, ties break to the lowest VM id.
class ReplicaBalancer {
 public:
  /// `backlogs` pairs each live member VM id with its current backlog;
  /// returns the chosen VM id (0 if empty — callers never pass empty).
  static std::uint64_t route(
      const std::vector<std::pair<std::uint64_t, Seconds>>& backlogs);
};

/// The serving layer the cloud control loop drives. One instance per
/// Cloud; owns its latency histogram so concurrent campaigns never
/// share tail state through the global registry (global serve.* metrics
/// are still published for observability).
class ServeLayer {
 public:
  explicit ServeLayer(const ServeConfig& config);

  // -- placement lifecycle (wired from openstack/cloud.cpp) -----------
  void on_vm_placed(const trace::VmRequest& request,
                    const hw::ServerNode* node);
  void on_vm_moved(std::uint64_t vm_id, const hw::ServerNode* node);
  /// Natural departure or loss: outstanding requests are orphaned and
  /// counted in dropped_lost either way.
  void on_vm_removed(std::uint64_t vm_id);

  /// Fault-path dispatch stall on one VM's queue.
  void add_stall(std::uint64_t vm_id, Seconds at, Seconds duration);

  /// Fuzzer hook: `count` extra requests at `at`, spread round-robin
  /// across services (applied by the next advance() covering `at`).
  void inject_burst(Seconds at, std::uint64_t count);

  /// Generates, routes and retires the window (window_end - window,
  /// window_end]. Called once per cloud control tick.
  void advance(Seconds window_end, Seconds window);

  const ServeStats& stats() const { return stats_; }
  std::size_t outstanding() const;
  std::size_t services() const { return services_.size(); }
  /// Latency percentile over this layer's own histogram, milliseconds.
  double latency_percentile_ms(double q) const;
  const telemetry::Histogram& latency_histogram() const {
    return latency_ms_;
  }

 private:
  struct Replica {
    trace::VmRequest request;
    const hw::ServerNode* node{nullptr};
    VcpuQueue queue;
  };

  std::uint64_t service_of(std::uint64_t vm_id) const;
  /// Service-time multiplier from the node's current V-F-R point and
  /// the VM's workload signature.
  double speed_factor(const Replica& replica) const;
  void dispatch(std::uint64_t service, Seconds arrival);
  void drop_vm(std::uint64_t vm_id);

  ServeConfig config_;
  Rng rng_;
  std::map<std::uint64_t, Replica> replicas_;       // by VM id
  std::map<std::uint64_t, std::vector<std::uint64_t>> services_;
  std::vector<std::pair<double, std::uint64_t>> pending_bursts_;
  std::uint64_t burst_rr_{0};  // round-robin cursor across services
  ServeStats stats_;
  telemetry::Histogram latency_ms_;
};

}  // namespace uniserver::serve
