#include "serve/serve.h"

#include <algorithm>
#include <cmath>

namespace uniserver::serve {

namespace {
struct ServeMetrics {
  telemetry::Counter& generated = telemetry::counter(
      "serve.requests_generated", "requests",
      "User requests emitted by the open-loop generator (incl. bursts)");
  telemetry::Counter& completed = telemetry::counter(
      "serve.requests_completed", "requests",
      "Requests whose virtual completion time has passed");
  telemetry::Counter& dropped = telemetry::counter(
      "serve.requests_dropped", "requests",
      "Requests shed at the queue cap, unroutable, or orphaned by VM loss");
  telemetry::Counter& slo_violations = telemetry::counter(
      "serve.slo_violations", "requests",
      "Admitted requests whose sojourn exceeded their SLA latency target");
  telemetry::Counter& stalls = telemetry::counter(
      "serve.stalls", "events",
      "Dispatch stalls injected by fault paths (restore, SDC hit, cutover)");
  telemetry::Gauge& queue_depth = telemetry::gauge(
      "serve.queue_depth", "requests",
      "Outstanding requests across all VM queues after the last tick");
  telemetry::Histogram& latency_ms = telemetry::histogram(
      "serve.latency_ms", 0.0, 20000.0, 2000, "ms",
      "Request sojourn time (queue wait + service)");
  telemetry::Histogram& stall_ms = telemetry::histogram(
      "serve.stall_ms", 0.0, 60000.0, 600, "ms",
      "Duration of fault-path dispatch stalls applied to VM queues");
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}
}  // namespace

VcpuQueue::VcpuQueue(int vcpus, std::size_t cap)
    : free_at_(static_cast<std::size_t>(std::max(1, vcpus)), 0.0),
      cap_(std::max<std::size_t>(1, cap)) {}

VcpuQueue::Offer VcpuQueue::offer(Seconds arrival, Seconds service) {
  Offer offer;
  if (in_flight_.size() >= cap_) return offer;
  // Earliest-free server, ties to the lowest index: FIFO dispatch.
  std::size_t best = 0;
  for (std::size_t i = 1; i < free_at_.size(); ++i) {
    if (free_at_[i] < free_at_[best]) best = i;
  }
  const double start = std::max(arrival.value, free_at_[best]);
  const double completion = start + std::max(0.0, service.value);
  free_at_[best] = completion;
  in_flight_.push(completion);
  offer.admitted = true;
  offer.completion = Seconds{completion};
  offer.latency = Seconds{completion - arrival.value};
  return offer;
}

void VcpuQueue::stall(Seconds at, Seconds duration) {
  const double d = std::max(0.0, duration.value);
  for (double& horizon : free_at_) {
    horizon = std::max(horizon, at.value) + d;
  }
}

std::uint64_t VcpuQueue::drain(Seconds now) {
  std::uint64_t completed = 0;
  while (!in_flight_.empty() && in_flight_.top() <= now.value) {
    in_flight_.pop();
    ++completed;
  }
  return completed;
}

Seconds VcpuQueue::backlog(Seconds now) const {
  double total = 0.0;
  for (double horizon : free_at_) {
    total += std::max(0.0, horizon - now.value);
  }
  return Seconds{total};
}

std::uint64_t ReplicaBalancer::route(
    const std::vector<std::pair<std::uint64_t, Seconds>>& backlogs) {
  std::uint64_t best_id = 0;
  double best_backlog = 0.0;
  bool first = true;
  for (const auto& [id, backlog] : backlogs) {
    if (first || backlog.value < best_backlog ||
        (backlog.value == best_backlog && id < best_id)) {
      best_id = id;
      best_backlog = backlog.value;
      first = false;
    }
  }
  return best_id;
}

ServeLayer::ServeLayer(const ServeConfig& config)
    : config_(config),
      rng_(config.seed),
      latency_ms_(0.0, config.histogram_hi_ms,
                  std::max<std::size_t>(1, config.histogram_buckets)) {}

std::uint64_t ServeLayer::service_of(std::uint64_t vm_id) const {
  if (config_.replica_groups <= 1) return vm_id;
  return vm_id % static_cast<std::uint64_t>(config_.replica_groups);
}

void ServeLayer::on_vm_placed(const trace::VmRequest& request,
                              const hw::ServerNode* node) {
  Replica replica{request, node,
                  VcpuQueue(request.vcpus, config_.queue_cap)};
  replicas_.insert_or_assign(request.id, std::move(replica));
  auto& members = services_[service_of(request.id)];
  const auto pos =
      std::lower_bound(members.begin(), members.end(), request.id);
  if (pos == members.end() || *pos != request.id) {
    members.insert(pos, request.id);
  }
}

void ServeLayer::on_vm_moved(std::uint64_t vm_id,
                             const hw::ServerNode* node) {
  const auto it = replicas_.find(vm_id);
  if (it != replicas_.end()) it->second.node = node;
}

void ServeLayer::on_vm_removed(std::uint64_t vm_id) { drop_vm(vm_id); }

void ServeLayer::drop_vm(std::uint64_t vm_id) {
  const auto it = replicas_.find(vm_id);
  if (it == replicas_.end()) return;
  const auto orphaned =
      static_cast<std::uint64_t>(it->second.queue.outstanding());
  stats_.dropped_lost += orphaned;
  metrics().dropped.add(orphaned);
  const auto sit = services_.find(service_of(vm_id));
  if (sit != services_.end()) {
    std::erase(sit->second, vm_id);
    if (sit->second.empty()) services_.erase(sit);
  }
  replicas_.erase(it);
}

void ServeLayer::add_stall(std::uint64_t vm_id, Seconds at,
                           Seconds duration) {
  const auto it = replicas_.find(vm_id);
  if (it == replicas_.end()) return;
  it->second.queue.stall(at, duration);
  ++stats_.stalls;
  metrics().stalls.add();
  metrics().stall_ms.record(duration.value * 1000.0);
}

void ServeLayer::inject_burst(Seconds at, std::uint64_t count) {
  pending_bursts_.emplace_back(at.value, count);
}

double ServeLayer::speed_factor(const Replica& replica) const {
  if (replica.node == nullptr) return 1.0;
  const hw::NodeSpec& spec = replica.node->spec();
  const hw::Eop& eop = replica.node->eop();
  // Compute-bound work scales with core frequency; the memory-bound
  // share does not, and pays refresh duty instead: a shorter-than-
  // nominal refresh interval steals proportionally more DRAM bandwidth
  // from the guest, a relaxed one hands the overhead back.
  const double f = spec.chip.freq_nominal.value > 0.0
                       ? eop.freq / spec.chip.freq_nominal
                       : 1.0;
  const double mem =
      std::clamp(replica.request.workload.mem_intensity, 0.0, 1.0);
  const double refresh_ratio =
      eop.refresh.value > 0.0
          ? spec.dimm.nominal_refresh.value / eop.refresh.value
          : 1.0;
  const double mem_term =
      1.0 + config_.refresh_overhead_nominal * (refresh_ratio - 1.0);
  const double denom =
      (1.0 - mem) / std::max(0.05, f) + mem * std::max(0.1, mem_term);
  return 1.0 / std::max(1e-9, denom);
}

void ServeLayer::dispatch(std::uint64_t service, Seconds arrival) {
  ++stats_.generated;
  metrics().generated.add();
  const auto sit = services_.find(service);
  if (sit == services_.end() || sit->second.empty()) {
    ++stats_.dropped_unroutable;
    metrics().dropped.add();
    return;
  }
  std::vector<std::pair<std::uint64_t, Seconds>> backlogs;
  backlogs.reserve(sit->second.size());
  for (std::uint64_t id : sit->second) {
    backlogs.emplace_back(id, replicas_.at(id).queue.backlog(arrival));
  }
  Replica& replica = replicas_.at(ReplicaBalancer::route(backlogs));
  const double demand =
      rng_.exponential(1.0 / std::max(1e-9, config_.mean_service.value));
  const Seconds service_time{demand / speed_factor(replica)};
  const VcpuQueue::Offer offer = replica.queue.offer(arrival, service_time);
  if (!offer.admitted) {
    ++stats_.dropped_overload;
    metrics().dropped.add();
    return;
  }
  ++stats_.admitted;
  const double latency_s = offer.latency.value;
  stats_.latency_sum_s += latency_s;
  stats_.max_latency_s = std::max(stats_.max_latency_s, latency_s);
  latency_ms_.record(latency_s * 1000.0);
  metrics().latency_ms.record(latency_s * 1000.0);
  Seconds slo{0.0};
  switch (replica.request.sla) {
    case trace::SlaClass::kBestEffort:
      return;  // no latency SLO
    case trace::SlaClass::kStandard:
      slo = config_.slo_standard;
      break;
    case trace::SlaClass::kCritical:
      slo = config_.slo_critical;
      break;
  }
  if (latency_s > slo.value) {
    ++stats_.slo_violations;
    metrics().slo_violations.add();
    if (replica.request.sla == trace::SlaClass::kCritical) {
      ++stats_.slo_violations_critical;
    }
  }
}

void ServeLayer::advance(Seconds window_end, Seconds window) {
  const double t0 = window_end.value - window.value;

  // Bursts due in this window fire first, oldest first (stable on
  // equal timestamps so injection order is preserved).
  std::stable_sort(pending_bursts_.begin(), pending_bursts_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::pair<double, std::uint64_t>> later;
  std::vector<std::uint64_t> service_ids;
  service_ids.reserve(services_.size());
  for (const auto& [id, members] : services_) service_ids.push_back(id);
  for (const auto& [at, count] : pending_bursts_) {
    if (at > window_end.value) {
      later.emplace_back(at, count);
      continue;
    }
    const Seconds when{std::max(at, t0)};
    if (service_ids.empty()) {
      // Nothing placed yet: the burst lands on an empty fleet.
      stats_.generated += count;
      stats_.dropped_unroutable += count;
      metrics().generated.add(count);
      metrics().dropped.add(count);
      continue;
    }
    for (std::uint64_t k = 0; k < count; ++k) {
      dispatch(service_ids[burst_rr_++ % service_ids.size()], when);
    }
  }
  pending_bursts_ = std::move(later);

  // Open-loop Poisson per service, thinned against the diurnal shape.
  // Services iterate in ascending id so the Rng consumption order is a
  // pure function of state (the determinism contract).
  const double peak = std::max(config_.diurnal.peak_factor, 1e-9);
  for (const auto& [service, members] : services_) {
    double vcpus = 0.0;
    for (std::uint64_t id : members) {
      vcpus += static_cast<double>(replicas_.at(id).request.vcpus);
    }
    const double rate = config_.requests_per_vcpu_hz * vcpus;
    if (rate <= 0.0) continue;
    double t = t0;
    while (true) {
      t += rng_.exponential(rate * peak);
      if (t >= window_end.value) break;
      const double factor =
          trace::diurnal_factor(config_.diurnal, Seconds{t});
      if (rng_.uniform() * peak <= factor) dispatch(service, Seconds{t});
    }
  }

  std::uint64_t completed = 0;
  for (auto& [id, replica] : replicas_) {
    completed += replica.queue.drain(window_end);
  }
  stats_.completed += completed;
  metrics().completed.add(completed);
  metrics().queue_depth.set(static_cast<double>(outstanding()));
}

std::size_t ServeLayer::outstanding() const {
  std::size_t total = 0;
  for (const auto& [id, replica] : replicas_) {
    total += replica.queue.outstanding();
  }
  return total;
}

double ServeLayer::latency_percentile_ms(double q) const {
  return latency_ms_.percentile(q);
}

}  // namespace uniserver::serve
