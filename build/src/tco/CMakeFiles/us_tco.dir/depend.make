# Empty dependencies file for us_tco.
# This may be replaced when dependencies are built.
