file(REMOVE_RECURSE
  "CMakeFiles/us_tco.dir/explorer.cpp.o"
  "CMakeFiles/us_tco.dir/explorer.cpp.o.d"
  "CMakeFiles/us_tco.dir/tco.cpp.o"
  "CMakeFiles/us_tco.dir/tco.cpp.o.d"
  "libus_tco.a"
  "libus_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
