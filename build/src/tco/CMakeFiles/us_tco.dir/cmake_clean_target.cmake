file(REMOVE_RECURSE
  "libus_tco.a"
)
