file(REMOVE_RECURSE
  "libus_edge.a"
)
