file(REMOVE_RECURSE
  "CMakeFiles/us_edge.dir/edge.cpp.o"
  "CMakeFiles/us_edge.dir/edge.cpp.o.d"
  "libus_edge.a"
  "libus_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
