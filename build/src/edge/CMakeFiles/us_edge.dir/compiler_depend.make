# Empty compiler generated dependencies file for us_edge.
# This may be replaced when dependencies are built.
