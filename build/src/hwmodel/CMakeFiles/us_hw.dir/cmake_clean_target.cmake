file(REMOVE_RECURSE
  "libus_hw.a"
)
