file(REMOVE_RECURSE
  "CMakeFiles/us_hw.dir/cache_model.cpp.o"
  "CMakeFiles/us_hw.dir/cache_model.cpp.o.d"
  "CMakeFiles/us_hw.dir/chip.cpp.o"
  "CMakeFiles/us_hw.dir/chip.cpp.o.d"
  "CMakeFiles/us_hw.dir/chip_spec.cpp.o"
  "CMakeFiles/us_hw.dir/chip_spec.cpp.o.d"
  "CMakeFiles/us_hw.dir/core_model.cpp.o"
  "CMakeFiles/us_hw.dir/core_model.cpp.o.d"
  "CMakeFiles/us_hw.dir/dram_model.cpp.o"
  "CMakeFiles/us_hw.dir/dram_model.cpp.o.d"
  "CMakeFiles/us_hw.dir/pdn.cpp.o"
  "CMakeFiles/us_hw.dir/pdn.cpp.o.d"
  "CMakeFiles/us_hw.dir/platform.cpp.o"
  "CMakeFiles/us_hw.dir/platform.cpp.o.d"
  "CMakeFiles/us_hw.dir/power.cpp.o"
  "CMakeFiles/us_hw.dir/power.cpp.o.d"
  "CMakeFiles/us_hw.dir/raidr.cpp.o"
  "CMakeFiles/us_hw.dir/raidr.cpp.o.d"
  "libus_hw.a"
  "libus_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
