# Empty dependencies file for us_hw.
# This may be replaced when dependencies are built.
