
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/cache_model.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/cache_model.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/cache_model.cpp.o.d"
  "/root/repo/src/hwmodel/chip.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/chip.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/chip.cpp.o.d"
  "/root/repo/src/hwmodel/chip_spec.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/chip_spec.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/chip_spec.cpp.o.d"
  "/root/repo/src/hwmodel/core_model.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/core_model.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/core_model.cpp.o.d"
  "/root/repo/src/hwmodel/dram_model.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/dram_model.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/dram_model.cpp.o.d"
  "/root/repo/src/hwmodel/pdn.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/pdn.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/pdn.cpp.o.d"
  "/root/repo/src/hwmodel/platform.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/platform.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/platform.cpp.o.d"
  "/root/repo/src/hwmodel/power.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/power.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/power.cpp.o.d"
  "/root/repo/src/hwmodel/raidr.cpp" "src/hwmodel/CMakeFiles/us_hw.dir/raidr.cpp.o" "gcc" "src/hwmodel/CMakeFiles/us_hw.dir/raidr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
