# Empty compiler generated dependencies file for us_daemons.
# This may be replaced when dependencies are built.
