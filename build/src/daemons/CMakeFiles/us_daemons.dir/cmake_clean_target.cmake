file(REMOVE_RECURSE
  "libus_daemons.a"
)
