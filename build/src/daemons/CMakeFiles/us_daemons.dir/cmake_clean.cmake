file(REMOVE_RECURSE
  "CMakeFiles/us_daemons.dir/healthlog.cpp.o"
  "CMakeFiles/us_daemons.dir/healthlog.cpp.o.d"
  "CMakeFiles/us_daemons.dir/logfile.cpp.o"
  "CMakeFiles/us_daemons.dir/logfile.cpp.o.d"
  "CMakeFiles/us_daemons.dir/predictor.cpp.o"
  "CMakeFiles/us_daemons.dir/predictor.cpp.o.d"
  "CMakeFiles/us_daemons.dir/status_interface.cpp.o"
  "CMakeFiles/us_daemons.dir/status_interface.cpp.o.d"
  "CMakeFiles/us_daemons.dir/stresslog.cpp.o"
  "CMakeFiles/us_daemons.dir/stresslog.cpp.o.d"
  "libus_daemons.a"
  "libus_daemons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
