
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/daemons/healthlog.cpp" "src/daemons/CMakeFiles/us_daemons.dir/healthlog.cpp.o" "gcc" "src/daemons/CMakeFiles/us_daemons.dir/healthlog.cpp.o.d"
  "/root/repo/src/daemons/logfile.cpp" "src/daemons/CMakeFiles/us_daemons.dir/logfile.cpp.o" "gcc" "src/daemons/CMakeFiles/us_daemons.dir/logfile.cpp.o.d"
  "/root/repo/src/daemons/predictor.cpp" "src/daemons/CMakeFiles/us_daemons.dir/predictor.cpp.o" "gcc" "src/daemons/CMakeFiles/us_daemons.dir/predictor.cpp.o.d"
  "/root/repo/src/daemons/status_interface.cpp" "src/daemons/CMakeFiles/us_daemons.dir/status_interface.cpp.o" "gcc" "src/daemons/CMakeFiles/us_daemons.dir/status_interface.cpp.o.d"
  "/root/repo/src/daemons/stresslog.cpp" "src/daemons/CMakeFiles/us_daemons.dir/stresslog.cpp.o" "gcc" "src/daemons/CMakeFiles/us_daemons.dir/stresslog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwmodel/CMakeFiles/us_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/us_stress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
