file(REMOVE_RECURSE
  "CMakeFiles/us_ecc.dir/scrubber.cpp.o"
  "CMakeFiles/us_ecc.dir/scrubber.cpp.o.d"
  "CMakeFiles/us_ecc.dir/secded.cpp.o"
  "CMakeFiles/us_ecc.dir/secded.cpp.o.d"
  "libus_ecc.a"
  "libus_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
