# Empty compiler generated dependencies file for us_ecc.
# This may be replaced when dependencies are built.
