file(REMOVE_RECURSE
  "libus_ecc.a"
)
