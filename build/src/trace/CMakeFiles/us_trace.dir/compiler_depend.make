# Empty compiler generated dependencies file for us_trace.
# This may be replaced when dependencies are built.
