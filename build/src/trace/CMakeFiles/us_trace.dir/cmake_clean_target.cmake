file(REMOVE_RECURSE
  "libus_trace.a"
)
