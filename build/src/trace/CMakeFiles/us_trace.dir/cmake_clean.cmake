file(REMOVE_RECURSE
  "CMakeFiles/us_trace.dir/arrivals.cpp.o"
  "CMakeFiles/us_trace.dir/arrivals.cpp.o.d"
  "CMakeFiles/us_trace.dir/diurnal.cpp.o"
  "CMakeFiles/us_trace.dir/diurnal.cpp.o.d"
  "CMakeFiles/us_trace.dir/ldbc.cpp.o"
  "CMakeFiles/us_trace.dir/ldbc.cpp.o.d"
  "libus_trace.a"
  "libus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
