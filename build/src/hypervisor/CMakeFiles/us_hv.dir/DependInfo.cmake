
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/domains.cpp" "src/hypervisor/CMakeFiles/us_hv.dir/domains.cpp.o" "gcc" "src/hypervisor/CMakeFiles/us_hv.dir/domains.cpp.o.d"
  "/root/repo/src/hypervisor/fault_injection.cpp" "src/hypervisor/CMakeFiles/us_hv.dir/fault_injection.cpp.o" "gcc" "src/hypervisor/CMakeFiles/us_hv.dir/fault_injection.cpp.o.d"
  "/root/repo/src/hypervisor/hypervisor.cpp" "src/hypervisor/CMakeFiles/us_hv.dir/hypervisor.cpp.o" "gcc" "src/hypervisor/CMakeFiles/us_hv.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hypervisor/objects.cpp" "src/hypervisor/CMakeFiles/us_hv.dir/objects.cpp.o" "gcc" "src/hypervisor/CMakeFiles/us_hv.dir/objects.cpp.o.d"
  "/root/repo/src/hypervisor/protection.cpp" "src/hypervisor/CMakeFiles/us_hv.dir/protection.cpp.o" "gcc" "src/hypervisor/CMakeFiles/us_hv.dir/protection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/daemons/CMakeFiles/us_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/us_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/us_stress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
