file(REMOVE_RECURSE
  "CMakeFiles/us_hv.dir/domains.cpp.o"
  "CMakeFiles/us_hv.dir/domains.cpp.o.d"
  "CMakeFiles/us_hv.dir/fault_injection.cpp.o"
  "CMakeFiles/us_hv.dir/fault_injection.cpp.o.d"
  "CMakeFiles/us_hv.dir/hypervisor.cpp.o"
  "CMakeFiles/us_hv.dir/hypervisor.cpp.o.d"
  "CMakeFiles/us_hv.dir/objects.cpp.o"
  "CMakeFiles/us_hv.dir/objects.cpp.o.d"
  "CMakeFiles/us_hv.dir/protection.cpp.o"
  "CMakeFiles/us_hv.dir/protection.cpp.o.d"
  "libus_hv.a"
  "libus_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
