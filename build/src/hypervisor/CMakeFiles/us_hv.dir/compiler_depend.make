# Empty compiler generated dependencies file for us_hv.
# This may be replaced when dependencies are built.
