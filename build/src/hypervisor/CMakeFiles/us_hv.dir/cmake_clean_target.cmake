file(REMOVE_RECURSE
  "libus_hv.a"
)
