file(REMOVE_RECURSE
  "CMakeFiles/us_common.dir/csv.cpp.o"
  "CMakeFiles/us_common.dir/csv.cpp.o.d"
  "CMakeFiles/us_common.dir/log.cpp.o"
  "CMakeFiles/us_common.dir/log.cpp.o.d"
  "CMakeFiles/us_common.dir/rng.cpp.o"
  "CMakeFiles/us_common.dir/rng.cpp.o.d"
  "CMakeFiles/us_common.dir/stats.cpp.o"
  "CMakeFiles/us_common.dir/stats.cpp.o.d"
  "CMakeFiles/us_common.dir/table.cpp.o"
  "CMakeFiles/us_common.dir/table.cpp.o.d"
  "libus_common.a"
  "libus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
