file(REMOVE_RECURSE
  "libus_common.a"
)
