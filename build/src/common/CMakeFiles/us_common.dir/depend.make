# Empty dependencies file for us_common.
# This may be replaced when dependencies are built.
