file(REMOVE_RECURSE
  "libus_sim.a"
)
