# Empty dependencies file for us_sim.
# This may be replaced when dependencies are built.
