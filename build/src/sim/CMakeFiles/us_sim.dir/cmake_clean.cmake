file(REMOVE_RECURSE
  "CMakeFiles/us_sim.dir/simulator.cpp.o"
  "CMakeFiles/us_sim.dir/simulator.cpp.o.d"
  "libus_sim.a"
  "libus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
