
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stress/genetic.cpp" "src/stress/CMakeFiles/us_stress.dir/genetic.cpp.o" "gcc" "src/stress/CMakeFiles/us_stress.dir/genetic.cpp.o.d"
  "/root/repo/src/stress/kernels.cpp" "src/stress/CMakeFiles/us_stress.dir/kernels.cpp.o" "gcc" "src/stress/CMakeFiles/us_stress.dir/kernels.cpp.o.d"
  "/root/repo/src/stress/profiles.cpp" "src/stress/CMakeFiles/us_stress.dir/profiles.cpp.o" "gcc" "src/stress/CMakeFiles/us_stress.dir/profiles.cpp.o.d"
  "/root/repo/src/stress/shmoo.cpp" "src/stress/CMakeFiles/us_stress.dir/shmoo.cpp.o" "gcc" "src/stress/CMakeFiles/us_stress.dir/shmoo.cpp.o.d"
  "/root/repo/src/stress/shmoo_surface.cpp" "src/stress/CMakeFiles/us_stress.dir/shmoo_surface.cpp.o" "gcc" "src/stress/CMakeFiles/us_stress.dir/shmoo_surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwmodel/CMakeFiles/us_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
