file(REMOVE_RECURSE
  "libus_stress.a"
)
