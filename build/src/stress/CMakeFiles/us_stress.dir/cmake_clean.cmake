file(REMOVE_RECURSE
  "CMakeFiles/us_stress.dir/genetic.cpp.o"
  "CMakeFiles/us_stress.dir/genetic.cpp.o.d"
  "CMakeFiles/us_stress.dir/kernels.cpp.o"
  "CMakeFiles/us_stress.dir/kernels.cpp.o.d"
  "CMakeFiles/us_stress.dir/profiles.cpp.o"
  "CMakeFiles/us_stress.dir/profiles.cpp.o.d"
  "CMakeFiles/us_stress.dir/shmoo.cpp.o"
  "CMakeFiles/us_stress.dir/shmoo.cpp.o.d"
  "CMakeFiles/us_stress.dir/shmoo_surface.cpp.o"
  "CMakeFiles/us_stress.dir/shmoo_surface.cpp.o.d"
  "libus_stress.a"
  "libus_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
