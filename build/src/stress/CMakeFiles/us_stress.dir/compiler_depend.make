# Empty compiler generated dependencies file for us_stress.
# This may be replaced when dependencies are built.
