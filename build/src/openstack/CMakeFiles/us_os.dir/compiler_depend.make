# Empty compiler generated dependencies file for us_os.
# This may be replaced when dependencies are built.
