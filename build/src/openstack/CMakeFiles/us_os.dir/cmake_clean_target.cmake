file(REMOVE_RECURSE
  "libus_os.a"
)
