
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openstack/cloud.cpp" "src/openstack/CMakeFiles/us_os.dir/cloud.cpp.o" "gcc" "src/openstack/CMakeFiles/us_os.dir/cloud.cpp.o.d"
  "/root/repo/src/openstack/failure_predictor.cpp" "src/openstack/CMakeFiles/us_os.dir/failure_predictor.cpp.o" "gcc" "src/openstack/CMakeFiles/us_os.dir/failure_predictor.cpp.o.d"
  "/root/repo/src/openstack/migration.cpp" "src/openstack/CMakeFiles/us_os.dir/migration.cpp.o" "gcc" "src/openstack/CMakeFiles/us_os.dir/migration.cpp.o.d"
  "/root/repo/src/openstack/monitor.cpp" "src/openstack/CMakeFiles/us_os.dir/monitor.cpp.o" "gcc" "src/openstack/CMakeFiles/us_os.dir/monitor.cpp.o.d"
  "/root/repo/src/openstack/node.cpp" "src/openstack/CMakeFiles/us_os.dir/node.cpp.o" "gcc" "src/openstack/CMakeFiles/us_os.dir/node.cpp.o.d"
  "/root/repo/src/openstack/scheduler.cpp" "src/openstack/CMakeFiles/us_os.dir/scheduler.cpp.o" "gcc" "src/openstack/CMakeFiles/us_os.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypervisor/CMakeFiles/us_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/us_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/daemons/CMakeFiles/us_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/us_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/us_stress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
