file(REMOVE_RECURSE
  "CMakeFiles/us_os.dir/cloud.cpp.o"
  "CMakeFiles/us_os.dir/cloud.cpp.o.d"
  "CMakeFiles/us_os.dir/failure_predictor.cpp.o"
  "CMakeFiles/us_os.dir/failure_predictor.cpp.o.d"
  "CMakeFiles/us_os.dir/migration.cpp.o"
  "CMakeFiles/us_os.dir/migration.cpp.o.d"
  "CMakeFiles/us_os.dir/monitor.cpp.o"
  "CMakeFiles/us_os.dir/monitor.cpp.o.d"
  "CMakeFiles/us_os.dir/node.cpp.o"
  "CMakeFiles/us_os.dir/node.cpp.o.d"
  "CMakeFiles/us_os.dir/scheduler.cpp.o"
  "CMakeFiles/us_os.dir/scheduler.cpp.o.d"
  "libus_os.a"
  "libus_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
