# CMake generated Testfile for 
# Source directory: /root/repo/src/openstack
# Build directory: /root/repo/build/src/openstack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
