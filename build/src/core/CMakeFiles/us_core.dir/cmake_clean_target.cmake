file(REMOVE_RECURSE
  "libus_core.a"
)
