
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ecosystem.cpp" "src/core/CMakeFiles/us_core.dir/ecosystem.cpp.o" "gcc" "src/core/CMakeFiles/us_core.dir/ecosystem.cpp.o.d"
  "/root/repo/src/core/governor.cpp" "src/core/CMakeFiles/us_core.dir/governor.cpp.o" "gcc" "src/core/CMakeFiles/us_core.dir/governor.cpp.o.d"
  "/root/repo/src/core/lifecycle.cpp" "src/core/CMakeFiles/us_core.dir/lifecycle.cpp.o" "gcc" "src/core/CMakeFiles/us_core.dir/lifecycle.cpp.o.d"
  "/root/repo/src/core/margin_table.cpp" "src/core/CMakeFiles/us_core.dir/margin_table.cpp.o" "gcc" "src/core/CMakeFiles/us_core.dir/margin_table.cpp.o.d"
  "/root/repo/src/core/security.cpp" "src/core/CMakeFiles/us_core.dir/security.cpp.o" "gcc" "src/core/CMakeFiles/us_core.dir/security.cpp.o.d"
  "/root/repo/src/core/uniserver_node.cpp" "src/core/CMakeFiles/us_core.dir/uniserver_node.cpp.o" "gcc" "src/core/CMakeFiles/us_core.dir/uniserver_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/openstack/CMakeFiles/us_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/us_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/daemons/CMakeFiles/us_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/us_stress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/us_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/us_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/us_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
