# Empty dependencies file for us_core.
# This may be replaced when dependencies are built.
