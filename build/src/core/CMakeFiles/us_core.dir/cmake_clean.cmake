file(REMOVE_RECURSE
  "CMakeFiles/us_core.dir/ecosystem.cpp.o"
  "CMakeFiles/us_core.dir/ecosystem.cpp.o.d"
  "CMakeFiles/us_core.dir/governor.cpp.o"
  "CMakeFiles/us_core.dir/governor.cpp.o.d"
  "CMakeFiles/us_core.dir/lifecycle.cpp.o"
  "CMakeFiles/us_core.dir/lifecycle.cpp.o.d"
  "CMakeFiles/us_core.dir/margin_table.cpp.o"
  "CMakeFiles/us_core.dir/margin_table.cpp.o.d"
  "CMakeFiles/us_core.dir/security.cpp.o"
  "CMakeFiles/us_core.dir/security.cpp.o.d"
  "CMakeFiles/us_core.dir/uniserver_node.cpp.o"
  "CMakeFiles/us_core.dir/uniserver_node.cpp.o.d"
  "libus_core.a"
  "libus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/us_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
