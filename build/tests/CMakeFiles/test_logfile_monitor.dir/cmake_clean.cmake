file(REMOVE_RECURSE
  "CMakeFiles/test_logfile_monitor.dir/test_logfile_monitor.cpp.o"
  "CMakeFiles/test_logfile_monitor.dir/test_logfile_monitor.cpp.o.d"
  "test_logfile_monitor"
  "test_logfile_monitor.pdb"
  "test_logfile_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logfile_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
