
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/test_property_sweeps.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/test_property_sweeps.dir/test_property_sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/us_core.dir/DependInfo.cmake"
  "/root/repo/build/src/openstack/CMakeFiles/us_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/us_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/daemons/CMakeFiles/us_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/us_stress.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/us_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/us_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/us_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/us_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/us_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/us_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/us_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
