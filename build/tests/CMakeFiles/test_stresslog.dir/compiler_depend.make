# Empty compiler generated dependencies file for test_stresslog.
# This may be replaced when dependencies are built.
