file(REMOVE_RECURSE
  "CMakeFiles/test_stresslog.dir/test_stresslog.cpp.o"
  "CMakeFiles/test_stresslog.dir/test_stresslog.cpp.o.d"
  "test_stresslog"
  "test_stresslog.pdb"
  "test_stresslog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stresslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
