file(REMOVE_RECURSE
  "CMakeFiles/test_migration_node.dir/test_migration_node.cpp.o"
  "CMakeFiles/test_migration_node.dir/test_migration_node.cpp.o.d"
  "test_migration_node"
  "test_migration_node.pdb"
  "test_migration_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
