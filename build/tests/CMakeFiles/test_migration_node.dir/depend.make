# Empty dependencies file for test_migration_node.
# This may be replaced when dependencies are built.
