# Empty dependencies file for test_healthlog.
# This may be replaced when dependencies are built.
