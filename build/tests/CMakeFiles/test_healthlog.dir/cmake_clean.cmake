file(REMOVE_RECURSE
  "CMakeFiles/test_healthlog.dir/test_healthlog.cpp.o"
  "CMakeFiles/test_healthlog.dir/test_healthlog.cpp.o.d"
  "test_healthlog"
  "test_healthlog.pdb"
  "test_healthlog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_healthlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
