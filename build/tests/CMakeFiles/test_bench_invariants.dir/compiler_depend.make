# Empty compiler generated dependencies file for test_bench_invariants.
# This may be replaced when dependencies are built.
