file(REMOVE_RECURSE
  "CMakeFiles/test_bench_invariants.dir/test_bench_invariants.cpp.o"
  "CMakeFiles/test_bench_invariants.dir/test_bench_invariants.cpp.o.d"
  "test_bench_invariants"
  "test_bench_invariants.pdb"
  "test_bench_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
