file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_isolation.dir/test_checkpoint_isolation.cpp.o"
  "CMakeFiles/test_checkpoint_isolation.dir/test_checkpoint_isolation.cpp.o.d"
  "test_checkpoint_isolation"
  "test_checkpoint_isolation.pdb"
  "test_checkpoint_isolation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
