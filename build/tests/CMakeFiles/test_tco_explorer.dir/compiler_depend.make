# Empty compiler generated dependencies file for test_tco_explorer.
# This may be replaced when dependencies are built.
