file(REMOVE_RECURSE
  "CMakeFiles/test_tco_explorer.dir/test_tco_explorer.cpp.o"
  "CMakeFiles/test_tco_explorer.dir/test_tco_explorer.cpp.o.d"
  "test_tco_explorer"
  "test_tco_explorer.pdb"
  "test_tco_explorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tco_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
