file(REMOVE_RECURSE
  "CMakeFiles/test_surface_protection.dir/test_surface_protection.cpp.o"
  "CMakeFiles/test_surface_protection.dir/test_surface_protection.cpp.o.d"
  "test_surface_protection"
  "test_surface_protection.pdb"
  "test_surface_protection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
