# Empty dependencies file for test_surface_protection.
# This may be replaced when dependencies are built.
