# Empty dependencies file for test_sla_eop.
# This may be replaced when dependencies are built.
