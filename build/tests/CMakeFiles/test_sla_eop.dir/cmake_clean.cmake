file(REMOVE_RECURSE
  "CMakeFiles/test_sla_eop.dir/test_sla_eop.cpp.o"
  "CMakeFiles/test_sla_eop.dir/test_sla_eop.cpp.o.d"
  "test_sla_eop"
  "test_sla_eop.pdb"
  "test_sla_eop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sla_eop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
