# Empty compiler generated dependencies file for test_dram_model.
# This may be replaced when dependencies are built.
