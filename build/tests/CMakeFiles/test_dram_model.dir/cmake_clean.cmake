file(REMOVE_RECURSE
  "CMakeFiles/test_dram_model.dir/test_dram_model.cpp.o"
  "CMakeFiles/test_dram_model.dir/test_dram_model.cpp.o.d"
  "test_dram_model"
  "test_dram_model.pdb"
  "test_dram_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
