file(REMOVE_RECURSE
  "CMakeFiles/test_core_stack.dir/test_core_stack.cpp.o"
  "CMakeFiles/test_core_stack.dir/test_core_stack.cpp.o.d"
  "test_core_stack"
  "test_core_stack.pdb"
  "test_core_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
