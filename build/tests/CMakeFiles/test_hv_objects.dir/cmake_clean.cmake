file(REMOVE_RECURSE
  "CMakeFiles/test_hv_objects.dir/test_hv_objects.cpp.o"
  "CMakeFiles/test_hv_objects.dir/test_hv_objects.cpp.o.d"
  "test_hv_objects"
  "test_hv_objects.pdb"
  "test_hv_objects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
