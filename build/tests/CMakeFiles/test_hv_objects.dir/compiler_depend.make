# Empty compiler generated dependencies file for test_hv_objects.
# This may be replaced when dependencies are built.
