file(REMOVE_RECURSE
  "CMakeFiles/test_tco.dir/test_tco.cpp.o"
  "CMakeFiles/test_tco.dir/test_tco.cpp.o.d"
  "test_tco"
  "test_tco.pdb"
  "test_tco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
