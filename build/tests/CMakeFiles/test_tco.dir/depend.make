# Empty dependencies file for test_tco.
# This may be replaced when dependencies are built.
