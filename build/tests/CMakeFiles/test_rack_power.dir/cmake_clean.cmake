file(REMOVE_RECURSE
  "CMakeFiles/test_rack_power.dir/test_rack_power.cpp.o"
  "CMakeFiles/test_rack_power.dir/test_rack_power.cpp.o.d"
  "test_rack_power"
  "test_rack_power.pdb"
  "test_rack_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rack_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
