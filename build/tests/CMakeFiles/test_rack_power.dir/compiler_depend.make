# Empty compiler generated dependencies file for test_rack_power.
# This may be replaced when dependencies are built.
