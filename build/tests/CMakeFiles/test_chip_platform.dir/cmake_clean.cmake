file(REMOVE_RECURSE
  "CMakeFiles/test_chip_platform.dir/test_chip_platform.cpp.o"
  "CMakeFiles/test_chip_platform.dir/test_chip_platform.cpp.o.d"
  "test_chip_platform"
  "test_chip_platform.pdb"
  "test_chip_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chip_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
