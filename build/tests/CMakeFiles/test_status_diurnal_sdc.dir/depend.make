# Empty dependencies file for test_status_diurnal_sdc.
# This may be replaced when dependencies are built.
