file(REMOVE_RECURSE
  "CMakeFiles/test_status_diurnal_sdc.dir/test_status_diurnal_sdc.cpp.o"
  "CMakeFiles/test_status_diurnal_sdc.dir/test_status_diurnal_sdc.cpp.o.d"
  "test_status_diurnal_sdc"
  "test_status_diurnal_sdc.pdb"
  "test_status_diurnal_sdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status_diurnal_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
