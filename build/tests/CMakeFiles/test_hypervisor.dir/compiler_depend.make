# Empty compiler generated dependencies file for test_hypervisor.
# This may be replaced when dependencies are built.
