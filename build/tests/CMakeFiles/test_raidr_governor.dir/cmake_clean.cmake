file(REMOVE_RECURSE
  "CMakeFiles/test_raidr_governor.dir/test_raidr_governor.cpp.o"
  "CMakeFiles/test_raidr_governor.dir/test_raidr_governor.cpp.o.d"
  "test_raidr_governor"
  "test_raidr_governor.pdb"
  "test_raidr_governor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raidr_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
