# Empty dependencies file for test_raidr_governor.
# This may be replaced when dependencies are built.
