file(REMOVE_RECURSE
  "CMakeFiles/test_failure_predictor.dir/test_failure_predictor.cpp.o"
  "CMakeFiles/test_failure_predictor.dir/test_failure_predictor.cpp.o.d"
  "test_failure_predictor"
  "test_failure_predictor.pdb"
  "test_failure_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
