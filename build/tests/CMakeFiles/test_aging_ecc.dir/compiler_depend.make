# Empty compiler generated dependencies file for test_aging_ecc.
# This may be replaced when dependencies are built.
