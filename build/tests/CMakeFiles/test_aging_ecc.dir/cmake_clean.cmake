file(REMOVE_RECURSE
  "CMakeFiles/test_aging_ecc.dir/test_aging_ecc.cpp.o"
  "CMakeFiles/test_aging_ecc.dir/test_aging_ecc.cpp.o.d"
  "test_aging_ecc"
  "test_aging_ecc.pdb"
  "test_aging_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aging_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
