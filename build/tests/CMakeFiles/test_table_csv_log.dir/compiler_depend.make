# Empty compiler generated dependencies file for test_table_csv_log.
# This may be replaced when dependencies are built.
