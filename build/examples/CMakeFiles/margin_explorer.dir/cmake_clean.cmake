file(REMOVE_RECURSE
  "CMakeFiles/margin_explorer.dir/margin_explorer.cpp.o"
  "CMakeFiles/margin_explorer.dir/margin_explorer.cpp.o.d"
  "margin_explorer"
  "margin_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/margin_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
