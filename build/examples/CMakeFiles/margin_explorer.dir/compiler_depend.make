# Empty compiler generated dependencies file for margin_explorer.
# This may be replaced when dependencies are built.
