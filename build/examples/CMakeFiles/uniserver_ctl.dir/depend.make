# Empty dependencies file for uniserver_ctl.
# This may be replaced when dependencies are built.
