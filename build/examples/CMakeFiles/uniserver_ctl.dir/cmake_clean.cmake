file(REMOVE_RECURSE
  "CMakeFiles/uniserver_ctl.dir/uniserver_ctl.cpp.o"
  "CMakeFiles/uniserver_ctl.dir/uniserver_ctl.cpp.o.d"
  "uniserver_ctl"
  "uniserver_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniserver_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
