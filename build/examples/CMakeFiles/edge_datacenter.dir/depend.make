# Empty dependencies file for edge_datacenter.
# This may be replaced when dependencies are built.
