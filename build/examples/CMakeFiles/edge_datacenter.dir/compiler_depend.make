# Empty compiler generated dependencies file for edge_datacenter.
# This may be replaced when dependencies are built.
