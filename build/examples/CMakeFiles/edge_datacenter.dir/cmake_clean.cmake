file(REMOVE_RECURSE
  "CMakeFiles/edge_datacenter.dir/edge_datacenter.cpp.o"
  "CMakeFiles/edge_datacenter.dir/edge_datacenter.cpp.o.d"
  "edge_datacenter"
  "edge_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
