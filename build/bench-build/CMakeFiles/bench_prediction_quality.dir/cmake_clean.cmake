file(REMOVE_RECURSE
  "../bench/bench_prediction_quality"
  "../bench/bench_prediction_quality.pdb"
  "CMakeFiles/bench_prediction_quality.dir/bench_prediction_quality.cpp.o"
  "CMakeFiles/bench_prediction_quality.dir/bench_prediction_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
