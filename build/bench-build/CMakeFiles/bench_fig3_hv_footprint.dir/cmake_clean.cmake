file(REMOVE_RECURSE
  "../bench/bench_fig3_hv_footprint"
  "../bench/bench_fig3_hv_footprint.pdb"
  "CMakeFiles/bench_fig3_hv_footprint.dir/bench_fig3_hv_footprint.cpp.o"
  "CMakeFiles/bench_fig3_hv_footprint.dir/bench_fig3_hv_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hv_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
