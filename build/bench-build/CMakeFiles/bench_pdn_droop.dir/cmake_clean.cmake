file(REMOVE_RECURSE
  "../bench/bench_pdn_droop"
  "../bench/bench_pdn_droop.pdb"
  "CMakeFiles/bench_pdn_droop.dir/bench_pdn_droop.cpp.o"
  "CMakeFiles/bench_pdn_droop.dir/bench_pdn_droop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdn_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
