file(REMOVE_RECURSE
  "../bench/bench_ablation_aging"
  "../bench/bench_ablation_aging.pdb"
  "CMakeFiles/bench_ablation_aging.dir/bench_ablation_aging.cpp.o"
  "CMakeFiles/bench_ablation_aging.dir/bench_ablation_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
