file(REMOVE_RECURSE
  "../bench/bench_ablation_virus"
  "../bench/bench_ablation_virus.pdb"
  "CMakeFiles/bench_ablation_virus.dir/bench_ablation_virus.cpp.o"
  "CMakeFiles/bench_ablation_virus.dir/bench_ablation_virus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_virus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
