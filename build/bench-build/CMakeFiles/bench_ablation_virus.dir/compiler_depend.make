# Empty compiler generated dependencies file for bench_ablation_virus.
# This may be replaced when dependencies are built.
