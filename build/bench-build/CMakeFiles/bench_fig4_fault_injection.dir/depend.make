# Empty dependencies file for bench_fig4_fault_injection.
# This may be replaced when dependencies are built.
