# Empty compiler generated dependencies file for bench_ablation_strong_cores.
# This may be replaced when dependencies are built.
