file(REMOVE_RECURSE
  "../bench/bench_ablation_strong_cores"
  "../bench/bench_ablation_strong_cores.pdb"
  "CMakeFiles/bench_ablation_strong_cores.dir/bench_ablation_strong_cores.cpp.o"
  "CMakeFiles/bench_ablation_strong_cores.dir/bench_ablation_strong_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strong_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
