file(REMOVE_RECURSE
  "../bench/bench_ablation_eop_energy"
  "../bench/bench_ablation_eop_energy.pdb"
  "CMakeFiles/bench_ablation_eop_energy.dir/bench_ablation_eop_energy.cpp.o"
  "CMakeFiles/bench_ablation_eop_energy.dir/bench_ablation_eop_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eop_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
