# Empty compiler generated dependencies file for bench_ablation_eop_energy.
# This may be replaced when dependencies are built.
