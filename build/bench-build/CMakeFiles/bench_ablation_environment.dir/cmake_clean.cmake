file(REMOVE_RECURSE
  "../bench/bench_ablation_environment"
  "../bench/bench_ablation_environment.pdb"
  "CMakeFiles/bench_ablation_environment.dir/bench_ablation_environment.cpp.o"
  "CMakeFiles/bench_ablation_environment.dir/bench_ablation_environment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
