# Empty compiler generated dependencies file for bench_dram_refresh.
# This may be replaced when dependencies are built.
