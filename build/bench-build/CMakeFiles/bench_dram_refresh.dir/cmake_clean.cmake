file(REMOVE_RECURSE
  "../bench/bench_dram_refresh"
  "../bench/bench_dram_refresh.pdb"
  "CMakeFiles/bench_dram_refresh.dir/bench_dram_refresh.cpp.o"
  "CMakeFiles/bench_dram_refresh.dir/bench_dram_refresh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dram_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
