file(REMOVE_RECURSE
  "../bench/bench_ablation_governor"
  "../bench/bench_ablation_governor.pdb"
  "CMakeFiles/bench_ablation_governor.dir/bench_ablation_governor.cpp.o"
  "CMakeFiles/bench_ablation_governor.dir/bench_ablation_governor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
