file(REMOVE_RECURSE
  "../bench/bench_raidr_binning"
  "../bench/bench_raidr_binning.pdb"
  "CMakeFiles/bench_raidr_binning.dir/bench_raidr_binning.cpp.o"
  "CMakeFiles/bench_raidr_binning.dir/bench_raidr_binning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raidr_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
