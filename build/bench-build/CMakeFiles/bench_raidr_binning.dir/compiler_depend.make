# Empty compiler generated dependencies file for bench_raidr_binning.
# This may be replaced when dependencies are built.
