file(REMOVE_RECURSE
  "../bench/bench_ablation_rackpower"
  "../bench/bench_ablation_rackpower.pdb"
  "CMakeFiles/bench_ablation_rackpower.dir/bench_ablation_rackpower.cpp.o"
  "CMakeFiles/bench_ablation_rackpower.dir/bench_ablation_rackpower.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rackpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
