# Empty compiler generated dependencies file for bench_ablation_rackpower.
# This may be replaced when dependencies are built.
