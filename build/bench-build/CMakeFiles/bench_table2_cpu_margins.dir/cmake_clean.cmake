file(REMOVE_RECURSE
  "../bench/bench_table2_cpu_margins"
  "../bench/bench_table2_cpu_margins.pdb"
  "CMakeFiles/bench_table2_cpu_margins.dir/bench_table2_cpu_margins.cpp.o"
  "CMakeFiles/bench_table2_cpu_margins.dir/bench_table2_cpu_margins.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cpu_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
