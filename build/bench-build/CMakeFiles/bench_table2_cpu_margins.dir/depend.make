# Empty dependencies file for bench_table2_cpu_margins.
# This may be replaced when dependencies are built.
