file(REMOVE_RECURSE
  "../bench/bench_fig1_binning"
  "../bench/bench_fig1_binning.pdb"
  "CMakeFiles/bench_fig1_binning.dir/bench_fig1_binning.cpp.o"
  "CMakeFiles/bench_fig1_binning.dir/bench_fig1_binning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
