file(REMOVE_RECURSE
  "../bench/bench_table3_tco"
  "../bench/bench_table3_tco.pdb"
  "CMakeFiles/bench_table3_tco.dir/bench_table3_tco.cpp.o"
  "CMakeFiles/bench_table3_tco.dir/bench_table3_tco.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
