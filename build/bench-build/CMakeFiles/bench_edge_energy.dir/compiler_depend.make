# Empty compiler generated dependencies file for bench_edge_energy.
# This may be replaced when dependencies are built.
