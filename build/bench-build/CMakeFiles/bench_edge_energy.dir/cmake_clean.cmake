file(REMOVE_RECURSE
  "../bench/bench_edge_energy"
  "../bench/bench_edge_energy.pdb"
  "CMakeFiles/bench_edge_energy.dir/bench_edge_energy.cpp.o"
  "CMakeFiles/bench_edge_energy.dir/bench_edge_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
