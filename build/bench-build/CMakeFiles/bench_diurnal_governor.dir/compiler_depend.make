# Empty compiler generated dependencies file for bench_diurnal_governor.
# This may be replaced when dependencies are built.
