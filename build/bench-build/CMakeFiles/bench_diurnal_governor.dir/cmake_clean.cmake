file(REMOVE_RECURSE
  "../bench/bench_diurnal_governor"
  "../bench/bench_diurnal_governor.pdb"
  "CMakeFiles/bench_diurnal_governor.dir/bench_diurnal_governor.cpp.o"
  "CMakeFiles/bench_diurnal_governor.dir/bench_diurnal_governor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diurnal_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
