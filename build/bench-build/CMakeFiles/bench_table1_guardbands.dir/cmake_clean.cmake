file(REMOVE_RECURSE
  "../bench/bench_table1_guardbands"
  "../bench/bench_table1_guardbands.pdb"
  "CMakeFiles/bench_table1_guardbands.dir/bench_table1_guardbands.cpp.o"
  "CMakeFiles/bench_table1_guardbands.dir/bench_table1_guardbands.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_guardbands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
