# Empty compiler generated dependencies file for bench_tco_exploration.
# This may be replaced when dependencies are built.
