file(REMOVE_RECURSE
  "../bench/bench_tco_exploration"
  "../bench/bench_tco_exploration.pdb"
  "CMakeFiles/bench_tco_exploration.dir/bench_tco_exploration.cpp.o"
  "CMakeFiles/bench_tco_exploration.dir/bench_tco_exploration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tco_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
