file(REMOVE_RECURSE
  "../bench/bench_fig2_stack_smoke"
  "../bench/bench_fig2_stack_smoke.pdb"
  "CMakeFiles/bench_fig2_stack_smoke.dir/bench_fig2_stack_smoke.cpp.o"
  "CMakeFiles/bench_fig2_stack_smoke.dir/bench_fig2_stack_smoke.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_stack_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
