# Empty dependencies file for bench_fig2_stack_smoke.
# This may be replaced when dependencies are built.
