// Example: planning selective protection from a fault-injection
// campaign (the workflow behind paper §6.C / Figure 4).
//
// Runs the SDC campaign over the hypervisor object inventory, ranks
// categories by fatality, then sizes a protection set: cover the most
// dangerous categories first until the residual fatality rate is below
// target, and report the memory/CPU cost of that choice.
//
// Build & run:  ./build/examples/fault_campaign
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "hypervisor/fault_injection.h"
#include "hypervisor/objects.h"
#include "hypervisor/protection.h"

using namespace uniserver;

int main() {
  hv::ObjectInventory inventory(2718);
  hv::FaultInjector injector(inventory);
  Rng rng(2718);
  const hv::CampaignResult campaign =
      injector.run_campaign({.runs_per_object = 5, .workload_loaded = true},
                            rng);

  // Rank categories by fatal injections.
  struct Ranked {
    hv::ObjectCategory category;
    std::uint64_t fatal;
    double size_mb;
  };
  std::vector<Ranked> ranked;
  for (const auto category : hv::kAllCategories) {
    const auto& profile = inventory.profile(category);
    ranked.push_back({category, campaign.fatal_by_category.at(category),
                      profile.mean_size_bytes * profile.object_count /
                          (1024.0 * 1024.0)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.fatal > b.fatal; });

  const auto total_fatal = static_cast<double>(campaign.total_fatal);
  std::printf("campaign: %llu injections, %llu fatal (%.2f%%)\n\n",
              static_cast<unsigned long long>(campaign.total_injections),
              static_cast<unsigned long long>(campaign.total_fatal),
              total_fatal /
                  static_cast<double>(campaign.total_injections) * 100.0);

  TextTable table("protection plan: protect categories in fatality order");
  table.set_header({"protect up to", "covered fatality", "residual",
                    "protected MB", "est. CPU overhead"});
  double covered = 0.0;
  double mb = 0.0;
  for (const auto& entry : ranked) {
    covered += static_cast<double>(entry.fatal);
    mb += entry.size_mb;
    // Checkpoint/checksum cost model: ~0.4% of a core per protected MB,
    // saturating — protecting everything costs ~2% (HvConfig default).
    const double overhead = std::min(0.02, 0.004 * mb);
    table.add_row({to_string(entry.category),
                   TextTable::pct(covered / total_fatal * 100.0),
                   TextTable::pct((1.0 - covered / total_fatal) * 100.0),
                   TextTable::num(mb, 2),
                   TextTable::pct(overhead * 100.0, 2)});
  }
  table.print();

  // The break-even point the paper's argument rests on: protecting the
  // top 3-4 categories covers most of the fatality at a trivial cost.
  double top3 = 0.0;
  for (int i = 0; i < 3; ++i) top3 += static_cast<double>(ranked[
      static_cast<std::size_t>(i)].fatal);
  std::printf("\nprotecting just {%s, %s, %s} covers %.1f%% of fatal "
              "injections\n",
              to_string(ranked[0].category), to_string(ranked[1].category),
              to_string(ranked[2].category), top3 / total_fatal * 100.0);

  // The policy object the hypervisor actually consumes.
  hv::ProtectionPolicy policy({.residual_target = 0.10});
  const hv::ProtectionPlan plan =
      policy.plan_from_campaign(inventory, campaign);
  std::printf("\nProtectionPolicy(residual <= 10%%) selects %zu categories "
              "-> coverage %.1f%%, %.2f MB checkpointed, %.2f%% CPU "
              "overhead; install with Hypervisor::apply_protection_plan()\n",
              plan.protected_categories.size(), plan.coverage * 100.0,
              plan.protected_mb, plan.cpu_overhead * 100.0);
  return 0;
}
