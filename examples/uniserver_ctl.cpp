// uniserver_ctl — operator CLI over the UniServer stack.
//
//   uniserver_ctl characterize [chip] [seed]   StressLog cycle -> safe V-F-R
//   uniserver_ctl surface      [chip] [seed]   V-F shmoo map
//   uniserver_ctl campaign     [seed]          hypervisor SDC campaign + plan
//   uniserver_ctl raidr        [seed]          refresh-binning frontier
//   uniserver_ctl tco          [cloud|edge]    yearly TCO breakdown
//   uniserver_ctl security     [chip] [offset%] threat assessment at an EOP
//   uniserver_ctl status       [chip] [seed]   one-line NodeStatus record
//   uniserver_ctl stack        [chip] [seed]   full Fig.2 stack run (DES-driven)
//   uniserver_ctl fuzz         [--seed S] [--cases N] [--events N]
//                              [--nodes N] [--horizon S] [--storm-share F]
//                              [--request-share F]
//                              [--seed-violation]
//                              [--replay <file>] [--replay-out <path>]
//                              [--differential]
//                              scenario fuzzer with invariant oracles
//                              (docs/TESTING.md); exit 1 on violation.
//                              --differential replays every case through
//                              the indexed AND reference placement
//                              engines for all policies and exits 1 on
//                              any divergence (the nightly CI gate)
//
// Chips: i5 | i7 | arm (default arm). Every subcommand is deterministic
// in its seed. Any subcommand accepts `--telemetry-out <path>` to dump
// the process telemetry snapshot (metrics + trace ring) as JSON on
// exit, and `--jobs N` to set the campaign worker count (N=1 serial,
// default: all hardware threads; results are bit-identical for any N).
// `stack` is the subcommand that populates all four namespaces
// (sim., daemon., hv., cloud.) in one run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/ecosystem.h"
#include "core/security.h"
#include "fuzz/harness.h"
#include "fuzz/scenario.h"
#include "daemons/predictor.h"
#include "daemons/status_interface.h"
#include "daemons/stresslog.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/eop.h"
#include "hwmodel/platform.h"
#include "hwmodel/raidr.h"
#include "hypervisor/fault_injection.h"
#include "hypervisor/protection.h"
#include "sim/simulator.h"
#include "stress/profiles.h"
#include "stress/shmoo_surface.h"
#include "tco/tco.h"
#include "telemetry/telemetry.h"
#include "trace/arrivals.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

hw::ChipSpec chip_by_name(const std::string& name) {
  if (name == "i5") return hw::i5_4200u_spec();
  if (name == "i7") return hw::i7_3970x_spec();
  return hw::arm_soc_spec();
}

int cmd_characterize(const std::string& chip_name, std::uint64_t seed) {
  hw::NodeSpec spec;
  spec.chip = chip_by_name(chip_name);
  hw::ServerNode node(spec, seed);
  daemons::StressLog stresslog(stress::ShmooConfig{.runs = 1}, seed);
  const auto margins = stresslog.run_cycle(
      node, daemons::default_stress_params(node), 0_s, nullptr);
  std::printf("%s (seed %llu): safe V-F-R vector\n", spec.chip.name.c_str(),
              static_cast<unsigned long long>(seed));
  for (const auto& point : margins.points) {
    std::printf("  %5.0f MHz -> %.3f V (-%.1f%%, crash at -%.1f%%)\n",
                point.freq.value, point.safe_vdd.value,
                point.safe_offset_percent, point.crash_offset_percent);
  }
  std::printf("  refresh -> %.2f s (%llu ECC events observed during the "
              "cycle)\n",
              margins.safe_refresh.value,
              static_cast<unsigned long long>(margins.ecc_events_observed));
  return 0;
}

int cmd_surface(const std::string& chip_name, std::uint64_t seed) {
  hw::Chip chip(chip_by_name(chip_name), seed);
  Rng rng(seed);
  const auto surface = stress::characterize_surface(
      chip, *stress::spec_profile("h264ref"), stress::SurfaceConfig{}, rng);
  std::printf("%s V-F shmoo (h264ref; '.' pass, 'o' ECC canary, 'X' "
              "crash):\n%s",
              chip.spec().name.c_str(), surface.ascii().c_str());
  return 0;
}

int cmd_campaign(std::uint64_t seed) {
  hv::ObjectInventory inventory(seed);
  hv::FaultInjector injector(inventory);
  Rng rng(seed);
  const auto campaign = injector.run_campaign(
      {.runs_per_object = 5, .workload_loaded = true}, rng);
  TextTable table("SDC campaign (" + std::to_string(inventory.size()) +
                  " objects x 5 runs)");
  table.set_header({"category", "fatal"});
  for (const auto category : hv::kAllCategories) {
    table.add_row({to_string(category),
                   std::to_string(campaign.fatal_by_category.at(category))});
  }
  table.print();
  const auto plan = hv::ProtectionPolicy{}.plan_from_campaign(inventory,
                                                              campaign);
  std::printf("protection plan: %zu categories, coverage %.1f%%, %.2f%% "
              "CPU\n",
              plan.protected_categories.size(), plan.coverage * 100.0,
              plan.cpu_overhead * 100.0);
  return 0;
}

int cmd_raidr(std::uint64_t seed) {
  hw::DimmSpec spec;
  const hw::DimmModel dimm(spec, seed);
  const hw::RaidrBinning binning(dimm, hw::RaidrConfig{});
  TextTable table("refresh binning frontier (30 C)");
  table.set_header({"long interval", "fast-bin rows", "DIMM power saved"});
  for (const Seconds interval : {1_s, 2_s, 5_s, 10_s}) {
    const auto result = binning.evaluate(interval, Celsius{30.0});
    table.add_row({TextTable::num(interval.value, 0) + " s",
                   TextTable::num(result.weak_row_fraction * 100.0, 4) + "%",
                   TextTable::pct(result.dimm_power_saving * 100.0)});
  }
  table.print();
  return 0;
}

int cmd_tco(const std::string& site) {
  const tco::DatacenterSpec spec = site == "edge"
                                       ? tco::edge_datacenter_spec()
                                       : tco::cloud_datacenter_spec();
  const tco::TcoBreakdown breakdown = tco::TcoModel{}.compute(spec);
  std::printf("%s deployment, %d servers, yearly:\n", spec.name.c_str(),
              spec.servers);
  std::printf("  server capex (amortized)  $%10.0f\n",
              breakdown.server_capex.value);
  std::printf("  infra capex (amortized)   $%10.0f\n",
              breakdown.infra_capex.value);
  std::printf("  energy                    $%10.0f  (%.1f%% of TCO)\n",
              breakdown.energy_opex.value, breakdown.energy_share() * 100.0);
  std::printf("  maintenance               $%10.0f\n",
              breakdown.maintenance_opex.value);
  std::printf("  total                     $%10.0f\n",
              breakdown.total().value);
  std::printf("UniServer margins (1.5x EE) would save $%.0f/yr\n",
              breakdown.energy_opex.value / 3.0);
  return 0;
}

int cmd_status(const std::string& chip_name, std::uint64_t seed) {
  // Characterize, deploy, run an hour, then print the one-line status
  // record upper layers would scrape (innovation iv).
  hw::NodeSpec spec;
  spec.chip = chip_by_name(chip_name);
  hw::ServerNode node(spec, seed);
  daemons::StressLog stresslog(stress::ShmooConfig{.runs = 1}, seed);
  daemons::HealthLog healthlog;
  const auto margins = stresslog.run_cycle(
      node, daemons::default_stress_params(node), 0_s, nullptr);
  const auto& point = margins.point_for(spec.chip.freq_nominal);
  node.set_eop({point.safe_vdd, point.freq, margins.safe_refresh});

  daemons::Predictor predictor;
  const auto status = daemons::collect_status(
      node, healthlog, predictor, margins, stress::ldbc_profile(),
      Seconds{3600.0}, 0, 0);
  std::printf("%s\n", daemons::serialize(status).c_str());
  std::printf("margin utilization %.0f%%, refresh utilization %.0f%%\n",
              status.margin_utilization * 100.0,
              status.refresh_utilization * 100.0);
  return 0;
}

int cmd_stack(const std::string& chip_name, std::uint64_t seed) {
  // The whole Figure-2 stack in one process: commission a small fleet
  // (StressLog characterization), then feed a VM arrival stream through
  // the cloud layer in 900 s chunks sequenced as discrete events on the
  // DES — so a single run populates every telemetry namespace: sim.*
  // (the event loop), daemon.* (StressLog/HealthLog/Predictor), hv.*
  // (per-tick error handling) and cloud.* (scheduling + migration).
  core::EcosystemConfig config;
  config.node_spec.chip = chip_by_name(chip_name);
  config.shmoo = stress::ShmooConfig{.runs = 1};
  config.nodes = 4;
  core::Ecosystem ecosystem(config, seed);
  ecosystem.commission();

  const Seconds horizon{7200.0};
  constexpr double kChunk = 900.0;
  trace::VmArrivalStream stream(trace::ArrivalConfig{}, seed);
  const auto requests = stream.generate(horizon);

  sim::Simulator des;
  for (double t = kChunk; t <= horizon.value + 1e-9; t += kChunk) {
    des.schedule_at(Seconds{t}, [&ecosystem, &requests, t] {
      // Cloud::run resubmits any request with arrival <= now, so each
      // chunk only gets the slice that arrives inside its window.
      std::vector<trace::VmRequest> slice;
      for (const auto& request : requests) {
        if (request.arrival.value > t - kChunk &&
            request.arrival.value <= t) {
          slice.push_back(request);
        }
      }
      ecosystem.cloud().run(slice, Seconds{t});
    });
  }
  des.run();

  const auto& stats = ecosystem.cloud().stats();
  std::printf("stack run: %d x %s, %.0f s horizon, %zu VM requests\n",
              config.nodes, config.node_spec.chip.name.c_str(),
              horizon.value, requests.size());
  std::printf("  accepted %llu / submitted %llu, completed %llu, "
              "lost %llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.lost_to_errors +
                                              stats.lost_to_node_crash));
  std::printf("  evacuations %llu, migrations %llu, node crashes %llu\n",
              static_cast<unsigned long long>(stats.evacuations),
              static_cast<unsigned long long>(stats.migrations),
              static_cast<unsigned long long>(stats.node_crash_events));
  std::printf("  energy %.3f kWh, VM survival %.4f, availability %.4f\n",
              stats.total_energy_kwh, stats.vm_survival_rate(),
              stats.mean_node_availability);
  const auto summary = ecosystem.summary(stress::ldbc_profile());
  std::printf("  mean undervolt %.1f%%, fleet power saving %.1f%%\n",
              summary.mean_undervolt_percent,
              summary.fleet_power_saving * 100.0);
  return 0;
}

void print_violations(const fuzz::RunOutcome& outcome) {
  for (const auto& violation : outcome.violations) {
    std::printf("  VIOLATION [%s] at t=%.0f s: %s\n",
                violation.oracle.c_str(), violation.at.value,
                violation.detail.c_str());
  }
}

int cmd_fuzz(const std::vector<std::string>& args) {
  fuzz::CampaignConfig config;
  std::string replay_path;
  std::string replay_out = "fuzz-repro.txt";
  bool differential = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const bool has_value = i + 1 < args.size();
    if (arg == "--seed" && has_value) {
      config.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--cases" && has_value) {
      config.cases = std::atoi(args[++i].c_str());
    } else if (arg == "--events" && has_value) {
      config.scenario.events = std::atoi(args[++i].c_str());
    } else if (arg == "--nodes" && has_value) {
      config.scenario.nodes = std::atoi(args[++i].c_str());
    } else if (arg == "--horizon" && has_value) {
      config.scenario.horizon = Seconds{std::atof(args[++i].c_str())};
    } else if (arg == "--storm-share" && has_value) {
      // Fraction of events that are evacuation storms (rack power loss
      // / mass EOP retreat); carved out of the fault budget.
      config.scenario.storm_share = std::atof(args[++i].c_str());
    } else if (arg == "--request-share" && has_value) {
      // Fraction of events that are request-burst flash crowds; >0
      // also enables the serving layer so the SLO oracle has books
      // to audit.
      config.scenario.request_share = std::atof(args[++i].c_str());
    } else if (arg == "--seed-violation") {
      config.scenario.seed_violation = true;
    } else if (arg == "--replay" && has_value) {
      replay_path = args[++i];
    } else if (arg == "--replay-out" && has_value) {
      replay_out = args[++i];
    } else if (arg == "--differential") {
      differential = true;
    } else {
      std::fprintf(stderr, "fuzz: unknown or incomplete option '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  // Both engines for every policy must make bit-identical decisions;
  // runs are sequential so the telemetry-counter diff is meaningful.
  fuzz::DifferentialOptions diff_options;
  diff_options.compare_telemetry = true;
  auto report_differential = [](int index,
                                const fuzz::DifferentialOutcome& outcome) {
    std::printf("case %2d: %zu policies x 2 engines: %s\n", index,
                outcome.policies.size(),
                outcome.identical ? "identical" : "MISMATCH");
    for (const auto& result : outcome.policies) {
      if (!result.identical()) {
        std::printf("  MISMATCH [%s]: %s\n", osk::to_string(result.policy),
                    result.mismatch.c_str());
      }
    }
  };

  if (!replay_path.empty()) {
    // Replay mode: re-run one recorded scenario exactly.
    fuzz::ScenarioConfig scenario;
    std::vector<fuzz::FuzzEvent> events;
    std::string error;
    if (!fuzz::load_scenario(replay_path, scenario, events, error)) {
      std::fprintf(stderr, "fuzz: cannot replay %s: %s\n",
                   replay_path.c_str(), error.c_str());
      return 2;
    }
    if (differential) {
      const auto outcome = fuzz::run_differential(scenario, events,
                                                  diff_options);
      report_differential(0, outcome);
      return outcome.identical ? 0 : 1;
    }
    const fuzz::RunOutcome outcome = fuzz::run_scenario(scenario, events);
    std::printf("replay %s: %zu events, %zu steps, digest %016llx\n",
                replay_path.c_str(), events.size(), outcome.steps,
                static_cast<unsigned long long>(outcome.digest));
    print_violations(outcome);
    return outcome.violated() ? 1 : 0;
  }

  if (differential) {
    // Differential sweep over generated cases (each case gets its own
    // forked substream, same discipline as run_campaign).
    Rng root(config.seed);
    auto streams =
        par::fork_streams(root, static_cast<std::size_t>(config.cases));
    int mismatched = 0;
    for (int i = 0; i < config.cases; ++i) {
      fuzz::ScenarioConfig scenario = config.scenario;
      scenario.stack_seed = streams[static_cast<std::size_t>(i)].next();
      const auto events = fuzz::generate_scenario(
          scenario, streams[static_cast<std::size_t>(i)]);
      const auto outcome =
          fuzz::run_differential(scenario, events, diff_options);
      report_differential(i, outcome);
      if (!outcome.identical) ++mismatched;
    }
    std::printf("differential: %d/%d cases identical across %zu policies\n",
                config.cases - mismatched, config.cases,
                osk::all_scheduler_policies().size());
    return mismatched == 0 ? 0 : 1;
  }

  const fuzz::CampaignResult campaign = fuzz::run_campaign(config);
  const fuzz::CaseResult* first_violating = nullptr;
  for (const auto& result : campaign.cases) {
    std::printf("case %2d: %zu events, %zu steps, digest %016llx%s\n",
                result.index, result.events.size(), result.outcome.steps,
                static_cast<unsigned long long>(result.outcome.digest),
                result.outcome.violated() ? "  << VIOLATED" : "");
    if (result.outcome.violated()) {
      print_violations(result.outcome);
      if (first_violating == nullptr) first_violating = &result;
    }
  }
  std::printf("campaign digest %016llx, %d/%zu cases violated\n",
              static_cast<unsigned long long>(campaign.digest),
              campaign.violated_cases, campaign.cases.size());

  if (first_violating != nullptr) {
    std::printf("shrunk case %d from %zu to %zu events\n",
                first_violating->index, first_violating->events.size(),
                first_violating->reproducer.size());
    if (fuzz::save_scenario(replay_out, first_violating->config,
                            first_violating->reproducer)) {
      std::printf("reproducer written to %s (re-run: uniserver_ctl fuzz "
                  "--replay %s)\n",
                  replay_out.c_str(), replay_out.c_str());
    } else {
      std::fprintf(stderr, "fuzz: failed to write reproducer to %s\n",
                   replay_out.c_str());
    }
    return 1;
  }
  return 0;
}

int cmd_security(const std::string& chip_name, double offset_percent) {
  const hw::ChipSpec chip = chip_by_name(chip_name);
  const hw::DimmSpec dimm;
  hw::Eop eop{hw::apply_undervolt_percent(chip.vdd_nominal, offset_percent),
              chip.freq_nominal, Seconds{1.5}};
  const auto assessment =
      core::SecurityAnalyzer{}.analyze(chip, dimm, eop, true);
  std::printf("%s at -%.1f%% / refresh 1.5 s:\n", chip.name.c_str(),
              offset_percent);
  for (const auto& threat : assessment.threats) {
    std::printf("  [%.2f] %-24s %s\n", threat.severity,
                to_string(threat.kind), threat.countermeasure.c_str());
  }
  std::printf("max severity %.2f -> residual %.3f with countermeasures\n",
              assessment.max_severity(), assessment.residual_risk());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--telemetry-out <path>` and `--jobs N` can appear anywhere; strip
  // them before the positional parse so every subcommand accepts them.
  std::string telemetry_out;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--telemetry-out requires a path\n");
        return 2;
      }
      telemetry_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--jobs requires a worker count\n");
        return 2;
      }
      par::set_default_jobs(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
      continue;
    }
    args.emplace_back(argv[i]);
  }
  const std::string command = !args.empty() ? args[0] : "characterize";
  const std::string arg2 = args.size() > 1 ? args[1] : "";
  const std::uint64_t seed =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 1;

  int status = 2;
  if (command == "characterize") {
    status = cmd_characterize(arg2, seed);
  } else if (command == "surface") {
    status = cmd_surface(arg2, seed);
  } else if (command == "campaign") {
    status = cmd_campaign(
        arg2.empty() ? 1 : std::strtoull(arg2.c_str(), nullptr, 10));
  } else if (command == "raidr") {
    status = cmd_raidr(
        arg2.empty() ? 1 : std::strtoull(arg2.c_str(), nullptr, 10));
  } else if (command == "tco") {
    status = cmd_tco(arg2.empty() ? "cloud" : arg2);
  } else if (command == "status") {
    status = cmd_status(arg2, seed);
  } else if (command == "stack") {
    status = cmd_stack(arg2, seed);
  } else if (command == "fuzz") {
    status = cmd_fuzz(args);
  } else if (command == "security") {
    status = cmd_security(
        arg2, args.size() > 2 ? std::atof(args[2].c_str()) : 12.0);
  } else {
    std::fprintf(stderr,
                 "usage: uniserver_ctl [--telemetry-out <path>] [--jobs N] "
                 "characterize|surface|campaign|raidr|tco|security|"
                 "status|stack|fuzz ...\n");
    return 2;
  }

  if (!telemetry_out.empty()) {
    if (telemetry::write_json_snapshot(telemetry_out,
                                       telemetry::MetricsRegistry::global(),
                                       &telemetry::TraceBuffer::global())) {
      std::printf("telemetry snapshot written to %s\n",
                  telemetry_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write telemetry snapshot to %s\n",
                   telemetry_out.c_str());
      return 1;
    }
  }
  return status;
}
