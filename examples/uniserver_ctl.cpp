// uniserver_ctl — operator CLI over the UniServer stack.
//
//   uniserver_ctl characterize [chip] [seed]   StressLog cycle -> safe V-F-R
//   uniserver_ctl surface      [chip] [seed]   V-F shmoo map
//   uniserver_ctl campaign     [seed]          hypervisor SDC campaign + plan
//   uniserver_ctl raidr        [seed]          refresh-binning frontier
//   uniserver_ctl tco          [cloud|edge]    yearly TCO breakdown
//   uniserver_ctl security     [chip] [offset%] threat assessment at an EOP
//   uniserver_ctl status       [chip] [seed]   one-line NodeStatus record
//
// Chips: i5 | i7 | arm (default arm). Every subcommand is deterministic
// in its seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "core/security.h"
#include "daemons/predictor.h"
#include "daemons/status_interface.h"
#include "daemons/stresslog.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/eop.h"
#include "hwmodel/platform.h"
#include "hwmodel/raidr.h"
#include "hypervisor/fault_injection.h"
#include "hypervisor/protection.h"
#include "stress/profiles.h"
#include "stress/shmoo_surface.h"
#include "tco/tco.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

hw::ChipSpec chip_by_name(const std::string& name) {
  if (name == "i5") return hw::i5_4200u_spec();
  if (name == "i7") return hw::i7_3970x_spec();
  return hw::arm_soc_spec();
}

int cmd_characterize(const std::string& chip_name, std::uint64_t seed) {
  hw::NodeSpec spec;
  spec.chip = chip_by_name(chip_name);
  hw::ServerNode node(spec, seed);
  daemons::StressLog stresslog(stress::ShmooConfig{.runs = 1}, seed);
  const auto margins = stresslog.run_cycle(
      node, daemons::default_stress_params(node), 0_s, nullptr);
  std::printf("%s (seed %llu): safe V-F-R vector\n", spec.chip.name.c_str(),
              static_cast<unsigned long long>(seed));
  for (const auto& point : margins.points) {
    std::printf("  %5.0f MHz -> %.3f V (-%.1f%%, crash at -%.1f%%)\n",
                point.freq.value, point.safe_vdd.value,
                point.safe_offset_percent, point.crash_offset_percent);
  }
  std::printf("  refresh -> %.2f s (%llu ECC events observed during the "
              "cycle)\n",
              margins.safe_refresh.value,
              static_cast<unsigned long long>(margins.ecc_events_observed));
  return 0;
}

int cmd_surface(const std::string& chip_name, std::uint64_t seed) {
  hw::Chip chip(chip_by_name(chip_name), seed);
  Rng rng(seed);
  const auto surface = stress::characterize_surface(
      chip, *stress::spec_profile("h264ref"), stress::SurfaceConfig{}, rng);
  std::printf("%s V-F shmoo (h264ref; '.' pass, 'o' ECC canary, 'X' "
              "crash):\n%s",
              chip.spec().name.c_str(), surface.ascii().c_str());
  return 0;
}

int cmd_campaign(std::uint64_t seed) {
  hv::ObjectInventory inventory(seed);
  hv::FaultInjector injector(inventory);
  Rng rng(seed);
  const auto campaign = injector.run_campaign(
      {.runs_per_object = 5, .workload_loaded = true}, rng);
  TextTable table("SDC campaign (" + std::to_string(inventory.size()) +
                  " objects x 5 runs)");
  table.set_header({"category", "fatal"});
  for (const auto category : hv::kAllCategories) {
    table.add_row({to_string(category),
                   std::to_string(campaign.fatal_by_category.at(category))});
  }
  table.print();
  const auto plan = hv::ProtectionPolicy{}.plan_from_campaign(inventory,
                                                              campaign);
  std::printf("protection plan: %zu categories, coverage %.1f%%, %.2f%% "
              "CPU\n",
              plan.protected_categories.size(), plan.coverage * 100.0,
              plan.cpu_overhead * 100.0);
  return 0;
}

int cmd_raidr(std::uint64_t seed) {
  hw::DimmSpec spec;
  const hw::DimmModel dimm(spec, seed);
  const hw::RaidrBinning binning(dimm, hw::RaidrConfig{});
  TextTable table("refresh binning frontier (30 C)");
  table.set_header({"long interval", "fast-bin rows", "DIMM power saved"});
  for (const Seconds interval : {1_s, 2_s, 5_s, 10_s}) {
    const auto result = binning.evaluate(interval, Celsius{30.0});
    table.add_row({TextTable::num(interval.value, 0) + " s",
                   TextTable::num(result.weak_row_fraction * 100.0, 4) + "%",
                   TextTable::pct(result.dimm_power_saving * 100.0)});
  }
  table.print();
  return 0;
}

int cmd_tco(const std::string& site) {
  const tco::DatacenterSpec spec = site == "edge"
                                       ? tco::edge_datacenter_spec()
                                       : tco::cloud_datacenter_spec();
  const tco::TcoBreakdown breakdown = tco::TcoModel{}.compute(spec);
  std::printf("%s deployment, %d servers, yearly:\n", spec.name.c_str(),
              spec.servers);
  std::printf("  server capex (amortized)  $%10.0f\n",
              breakdown.server_capex.value);
  std::printf("  infra capex (amortized)   $%10.0f\n",
              breakdown.infra_capex.value);
  std::printf("  energy                    $%10.0f  (%.1f%% of TCO)\n",
              breakdown.energy_opex.value, breakdown.energy_share() * 100.0);
  std::printf("  maintenance               $%10.0f\n",
              breakdown.maintenance_opex.value);
  std::printf("  total                     $%10.0f\n",
              breakdown.total().value);
  std::printf("UniServer margins (1.5x EE) would save $%.0f/yr\n",
              breakdown.energy_opex.value / 3.0);
  return 0;
}

int cmd_status(const std::string& chip_name, std::uint64_t seed) {
  // Characterize, deploy, run an hour, then print the one-line status
  // record upper layers would scrape (innovation iv).
  hw::NodeSpec spec;
  spec.chip = chip_by_name(chip_name);
  hw::ServerNode node(spec, seed);
  daemons::StressLog stresslog(stress::ShmooConfig{.runs = 1}, seed);
  daemons::HealthLog healthlog;
  const auto margins = stresslog.run_cycle(
      node, daemons::default_stress_params(node), 0_s, nullptr);
  const auto& point = margins.point_for(spec.chip.freq_nominal);
  node.set_eop({point.safe_vdd, point.freq, margins.safe_refresh});

  daemons::Predictor predictor;
  const auto status = daemons::collect_status(
      node, healthlog, predictor, margins, stress::ldbc_profile(),
      Seconds{3600.0}, 0, 0);
  std::printf("%s\n", daemons::serialize(status).c_str());
  std::printf("margin utilization %.0f%%, refresh utilization %.0f%%\n",
              status.margin_utilization * 100.0,
              status.refresh_utilization * 100.0);
  return 0;
}

int cmd_security(const std::string& chip_name, double offset_percent) {
  const hw::ChipSpec chip = chip_by_name(chip_name);
  const hw::DimmSpec dimm;
  hw::Eop eop{hw::apply_undervolt_percent(chip.vdd_nominal, offset_percent),
              chip.freq_nominal, Seconds{1.5}};
  const auto assessment =
      core::SecurityAnalyzer{}.analyze(chip, dimm, eop, true);
  std::printf("%s at -%.1f%% / refresh 1.5 s:\n", chip.name.c_str(),
              offset_percent);
  for (const auto& threat : assessment.threats) {
    std::printf("  [%.2f] %-24s %s\n", threat.severity,
                to_string(threat.kind), threat.countermeasure.c_str());
  }
  std::printf("max severity %.2f -> residual %.3f with countermeasures\n",
              assessment.max_severity(), assessment.residual_risk());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "characterize";
  const std::string arg2 = argc > 2 ? argv[2] : "";
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  if (command == "characterize") return cmd_characterize(arg2, seed);
  if (command == "surface") return cmd_surface(arg2, seed);
  if (command == "campaign") {
    return cmd_campaign(arg2.empty() ? 1
                                     : std::strtoull(arg2.c_str(), nullptr,
                                                     10));
  }
  if (command == "raidr") {
    return cmd_raidr(arg2.empty() ? 1
                                  : std::strtoull(arg2.c_str(), nullptr,
                                                  10));
  }
  if (command == "tco") return cmd_tco(arg2.empty() ? "cloud" : arg2);
  if (command == "status") return cmd_status(arg2, seed);
  if (command == "security") {
    return cmd_security(arg2, argc > 3 ? std::atof(argv[3]) : 12.0);
  }
  std::fprintf(stderr,
               "usage: uniserver_ctl characterize|surface|campaign|"
               "raidr|tco|security|status ...\n");
  return 2;
}
