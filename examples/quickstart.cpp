// Quickstart: the full UniServer per-node flow in ~60 lines.
//
//   1. model a server node (ARM SoC + 4 channels of DDR3),
//   2. pre-deployment characterization (StressLog shmoo campaign),
//   3. Predictor-advised Extended Operating Point,
//   4. host a VM and run the node, watching the HealthLog.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/uniserver_node.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

int main() {
  // 1. Describe the hardware. Presets model the paper's parts; every
  //    stochastic draw hangs off the explicit seed.
  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.guard_percent = 1.0;  // safety margin below the crash point

  core::UniServerNode node(config, /*seed=*/2024);

  // 2. Pre-deployment characterization: stress kernels + SPEC-like
  //    benchmarks sweep voltage down per core, per frequency.
  const daemons::SafeMargins& margins = node.characterize();
  std::printf("characterized %zu frequency points; safe refresh %.2f s\n",
              margins.points.size(), margins.safe_refresh.value);

  // 3. Deploy at the Predictor-recommended EOP.
  const auto advice = node.deploy();
  std::printf("deployed at %.3f V @ %.0f MHz (%s mode), refresh %.2f s\n",
              advice.eop.vdd.value, advice.eop.freq.value,
              to_string(advice.mode), advice.eop.refresh.value);

  const auto comparison =
      node.energy_comparison(stress::ldbc_profile(), /*active_cores=*/8);
  std::printf("node power %.1f W -> %.1f W (%.1f%% saved), fixed-work EE "
              "%.2fx\n",
              comparison.nominal_power.value, comparison.eop_power.value,
              comparison.power_saving * 100.0,
              comparison.energy_efficiency_factor);

  // 4. Host a VM and run for an hour of simulated time.
  hv::Vm vm;
  vm.id = 1;
  vm.name = "graph-db";
  vm.vcpus = 4;
  vm.memory_mb = 6144.0;
  vm.workload = stress::ldbc_profile();
  node.hypervisor().create_vm(vm);

  std::uint64_t masked = 0;
  for (int minute = 0; minute < 60; ++minute) {
    const hv::TickReport report = node.step(60_s);
    masked += report.cache_ecc_masked;
    if (report.node_crash) {
      std::printf("node crashed at minute %d!\n", minute);
      return 1;
    }
  }
  const auto aggregate = node.hypervisor().healthlog().aggregate(0_s);
  std::printf("1 h at EOP: %llu correctable errors masked, mean power "
              "%.1f W, %zu monitoring vectors logged\n",
              static_cast<unsigned long long>(masked),
              aggregate.mean_power_w, aggregate.vectors);
  return 0;
}
