// Example: an edge micro-datacenter (the paper's headline use case).
//
// Six ARM micro-servers behind a neighbourhood gateway serve an
// interactive IoT service with a 200 ms end-to-end latency target.
// The example shows the three compounding UniServer wins:
//   - edge latency slack converts into a lower-frequency DVFS point,
//   - commissioning strips the per-part voltage/refresh guard-bands,
//   - the resilient stack keeps service availability up despite EOP
//     operation, with TCO quantified against a conservative fleet.
//
// Build & run:  ./build/examples/edge_datacenter
#include <cstdio>

#include "common/table.h"
#include "core/ecosystem.h"
#include "edge/edge.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"
#include "tco/tco.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

core::EcosystemConfig fleet_config(bool enable_eop, MegaHertz freq) {
  core::EcosystemConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.nodes = 6;
  config.enable_eop = enable_eop;
  config.guard_percent = 1.0;
  config.shmoo.runs = 1;
  config.target_freq = freq;
  config.cloud.policy = osk::SchedulerPolicy::kReliabilityAware;
  config.cloud.tick = 60_s;
  return config;
}

}  // namespace

int main() {
  // --- the latency argument for running at the edge ------------------
  edge::LatencyModel latency;
  const edge::DvfsSavings dvfs = edge::edge_savings(latency, edge::VfCurve{});
  std::printf("== Edge micro-datacenter ==\n");
  std::printf("latency target %.0f ms: cloud leaves %.0f ms of compute, "
              "edge leaves %.0f ms -> run at %.0f%% frequency "
              "(%.0f%% less power)\n\n",
              latency.target_latency.millis(),
              latency.compute_budget_cloud().millis(),
              latency.compute_budget_edge().millis(),
              dvfs.freq_ratio * 100.0, dvfs.power_saving() * 100.0);

  // --- conservative fleet vs commissioned UniServer fleet ------------
  const MegaHertz nominal = hw::arm_soc_spec().freq_nominal;
  const MegaHertz edge_freq = nominal * dvfs.freq_ratio;

  trace::ArrivalConfig arrivals;
  arrivals.arrivals_per_hour = 10.0;
  arrivals.mean_lifetime = Seconds{2.0 * 3600.0};

  TextTable table("12 h of edge traffic: conservative vs UniServer fleet");
  table.set_header({"fleet", "undervolt", "refresh", "energy [kWh]",
                    "VM survival", "mean availability"});
  double conservative_kwh = 0.0;
  double uniserver_kwh = 0.0;
  for (const bool enable_eop : {false, true}) {
    core::Ecosystem ecosystem(
        fleet_config(enable_eop, enable_eop ? edge_freq : nominal), 7);
    trace::VmArrivalStream stream(arrivals, 7);
    const auto requests = stream.generate(Seconds{12.0 * 3600.0});
    ecosystem.run(requests, Seconds{12.0 * 3600.0});

    const auto summary = ecosystem.summary(stress::web_service_profile());
    const osk::CloudStats stats = ecosystem.cloud().stats();
    (enable_eop ? uniserver_kwh : conservative_kwh) = stats.total_energy_kwh;
    table.add_row({enable_eop ? "UniServer (EOP)" : "conservative",
                   TextTable::pct(summary.mean_undervolt_percent, 1),
                   TextTable::num(summary.mean_refresh_s, 2) + " s",
                   TextTable::num(stats.total_energy_kwh, 2),
                   TextTable::pct(stats.vm_survival_rate() * 100.0, 1),
                   TextTable::pct(stats.mean_node_availability * 100.0, 2)});
  }
  table.print();
  const double ee = conservative_kwh / uniserver_kwh;
  std::printf("\nfleet energy-efficiency factor: %.2fx\n", ee);

  // --- what that means for the bill ----------------------------------
  tco::TcoModel model;
  tco::DatacenterSpec spec = tco::edge_datacenter_spec();
  spec.servers = 6;
  std::printf("edge TCO improvement from the measured EE factor: %.3fx "
              "(yearly baseline $%.0f)\n",
              model.tco_improvement(spec, ee, false),
              model.compute(spec).total().value);
  return 0;
}
