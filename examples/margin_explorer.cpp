// Example: interactive margin exploration for one part.
//
//   ./build/examples/margin_explorer [i5|i7|arm] [seed]
//
// Prints the per-core, per-workload crash-offset table (the raw data
// behind Table 2), the GA-evolved worst-case virus, the StressLog's
// safe V-F-R vector and the Predictor's accuracy on held-out shmoo
// outcomes — everything an operator would look at before trusting an
// Extended Operating Point.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "daemons/predictor.h"
#include "daemons/stresslog.h"
#include "hwmodel/chip.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/eop.h"
#include "hwmodel/platform.h"
#include "stress/genetic.h"
#include "stress/profiles.h"
#include "stress/shmoo.h"
#include "stress/shmoo_surface.h"

using namespace uniserver;

int main(int argc, char** argv) {
  const std::string part = argc > 1 ? argv[1] : "arm";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  hw::NodeSpec node_spec;
  if (part == "i5") {
    node_spec.chip = hw::i5_4200u_spec();
  } else if (part == "i7") {
    node_spec.chip = hw::i7_3970x_spec();
  } else {
    node_spec.chip = hw::arm_soc_spec();
  }
  hw::ServerNode node(node_spec, seed);
  const hw::Chip& chip = node.chip();
  const auto& spec = node_spec.chip;
  std::printf("part: %s (seed %llu), nominal %.3f V @ %.0f MHz, %d cores\n\n",
              spec.name.c_str(), static_cast<unsigned long long>(seed),
              spec.vdd_nominal.value, spec.freq_nominal.value, spec.cores);

  // Per-core crash offsets per workload (part-stable values).
  TextTable table("crash offset [% below nominal VID] per core");
  std::vector<std::string> header{"workload"};
  for (int c = 0; c < chip.num_cores(); ++c) {
    header.push_back("core" + std::to_string(c));
  }
  header.push_back("c2c spread");
  table.set_header(header);
  for (const auto& w : stress::spec2006_profiles()) {
    std::vector<std::string> row{w.name};
    for (int c = 0; c < chip.num_cores(); ++c) {
      row.push_back(TextTable::num(
          hw::undervolt_percent(
              spec.vdd_nominal,
              chip.core(c).crash_voltage(w, spec.freq_nominal)),
          1));
    }
    row.push_back(TextTable::pct(
        chip.core_to_core_variation_percent(w, spec.freq_nominal)));
    table.add_row(row);
  }
  table.print();

  // The V-F shmoo surface under the noisiest benchmark: '.' pass,
  // 'o' marginal (ECC canary firing), 'X' crash.
  stress::SurfaceConfig surface_config;
  surface_config.offset_step = 2.0;
  Rng surface_rng(seed ^ 0x5F);
  const auto surface = stress::characterize_surface(
      chip, *stress::spec_profile("h264ref"), surface_config, surface_rng);
  std::printf("\nV-F shmoo surface (h264ref):\n%s", surface.ascii().c_str());

  // Worst-case virus via the genetic search.
  stress::GeneticVirusSearch search(chip);
  Rng ga_rng(seed ^ 0x6A);
  const stress::GaResult virus = search.run(ga_rng);
  std::printf("\nGA virus: activity %.2f, dI/dt %.2f -> crashes the part at "
              "-%.1f%%\n",
              virus.best.activity, virus.best.didt_stress,
              hw::undervolt_percent(
                  spec.vdd_nominal,
                  chip.system_crash_voltage(virus.best, spec.freq_nominal)));

  // StressLog safe margins.
  daemons::StressLog stresslog(stress::ShmooConfig{}, seed ^ 0x51);
  const auto params = daemons::default_stress_params(node);
  const auto margins =
      stresslog.run_cycle(node, params, Seconds{0.0}, nullptr);
  std::printf("\nsafe V-F-R vector (guard %.1f%%):\n", params.guard_percent);
  for (const auto& point : margins.points) {
    std::printf("  %5.0f MHz -> %.3f V (-%.1f%%)\n", point.freq.value,
                point.safe_vdd.value, point.safe_offset_percent);
  }
  std::printf("  refresh -> %.2f s\n", margins.safe_refresh.value);

  // Predictor trained on one campaign, validated on a re-run.
  stress::ShmooCharacterizer characterizer{stress::ShmooConfig{}};
  Rng campaign_rng(seed ^ 0xA11);
  const auto train_campaign = characterizer.campaign(
      chip, params.suite, spec.freq_nominal, campaign_rng);
  auto train = daemons::Predictor::samples_from_campaign(
      train_campaign, spec.freq_nominal, spec.freq_nominal, params.suite);
  const auto test_campaign = characterizer.campaign(
      chip, params.suite, spec.freq_nominal, campaign_rng);
  const auto test = daemons::Predictor::samples_from_campaign(
      test_campaign, spec.freq_nominal, spec.freq_nominal, params.suite);

  daemons::Predictor predictor;
  Rng train_rng(seed ^ 0x7121);
  predictor.train(train, 40, 0.2, train_rng);
  std::printf("\npredictor: %.1f%% accuracy on %zu held-out shmoo samples\n",
              predictor.accuracy(test) * 100.0, test.size());
  return 0;
}
