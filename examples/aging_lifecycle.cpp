// Example: years in the life of a UniServer node.
//
// Shows the closed monitoring loop the paper builds at the bottom of
// the stack: the silicon wears, correctable errors creep up as the
// once-safe EOP approaches the (shrinking) crash margin, the HealthLog
// threshold and the quarterly StressLog schedule trigger
// re-characterization, and the node backs its margins off — staying
// crash-free while still well below nominal voltage.
//
// Build & run:  ./build/examples/aging_lifecycle
#include <cstdio>

#include "common/table.h"
#include "core/lifecycle.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/eop.h"
#include "stress/profiles.h"

using namespace uniserver;

int main() {
  constexpr double kDay = 24.0 * 3600.0;
  constexpr double kQuarterWear = 1.5;  // simulated years per quarter-day

  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.node_spec.chip.variation.aging_loss_at_year = 0.04;
  config.shmoo.runs = 1;
  config.guard_percent = 1.0;
  config.predictor_epochs = 10;

  core::UniServerNode node(config, 9);
  hv::Vm vm;
  vm.id = 1;
  vm.name = "service";
  vm.vcpus = 6;
  vm.memory_mb = 8192.0;
  vm.workload = stress::ldbc_profile();
  node.hypervisor().create_vm(vm);

  node.characterize();
  node.deploy();

  TextTable table("EOP trajectory while the part wears");
  table.set_header({"age [years]", "margin lost", "undervolt applied",
                    "masked errors", "crashes"});

  std::uint64_t masked_total = 0;
  std::uint64_t crashes = 0;
  // Each phase: a quarter-day of ticks at heavy aging acceleration,
  // followed by the quarterly StressLog cycle.
  for (int quarter = 0; quarter < 8; ++quarter) {
    std::uint64_t masked = 0;
    const double accel = kQuarterWear * 365.0 * 4.0;  // years per day / 4
    for (double t = 0.0; t < 0.25 * kDay; t += 1800.0) {
      node.server().advance_age(Seconds{1800.0 * accel});
      const hv::TickReport report = node.step(Seconds{1800.0});
      masked += report.cache_ecc_masked + report.dram_ecc_masked;
      if (report.node_crash) ++crashes;
      if (!node.hypervisor().vms().contains(1)) {
        node.hypervisor().create_vm(vm);
      }
    }
    masked_total += masked;

    const double age_years =
        node.server().chip().age().value / (365.0 * kDay);
    const double undervolt = hw::undervolt_percent(
        config.node_spec.chip.vdd_nominal, node.server().eop().vdd);
    table.add_row({TextTable::num(age_years, 1),
                   TextTable::pct(
                       node.server().chip().core(0).aging_loss() * 100.0, 1),
                   TextTable::pct(undervolt, 1), std::to_string(masked),
                   std::to_string(crashes)});

    // Quarterly StressLog cycle refreshes the margins for the aged part.
    node.characterize();
    node.deploy();
  }
  table.print();

  std::printf("\nover the deployment: %llu correctable errors masked, "
              "%llu node crashes, %d StressLog cycles; the node ends at "
              "-%.1f%% undervolt despite %.1f%% of margin lost to wear\n",
              static_cast<unsigned long long>(masked_total),
              static_cast<unsigned long long>(crashes),
              node.characterization_cycles(),
              hw::undervolt_percent(config.node_spec.chip.vdd_nominal,
                                    node.server().eop().vdd),
              node.server().chip().core(0).aging_loss() * 100.0);
  return 0;
}
