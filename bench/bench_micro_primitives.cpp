// google-benchmark micro-benchmarks of the hot primitives: the SECDED
// codec (touched on every simulated scrub), the RNG, the margin-model
// evaluation (inner loop of every shmoo campaign), the DES engine and
// the scheduler's pick path.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ecc/secded.h"
#include "hwmodel/chip.h"
#include "hwmodel/chip_spec.h"
#include "sim/simulator.h"
#include "stress/profiles.h"

using namespace uniserver;

static void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

static void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

static void BM_SecdedEncode(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t payload = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc::Secded72::encode(payload));
    ++payload;
  }
}
BENCHMARK(BM_SecdedEncode);

static void BM_SecdedDecodeCorrect(benchmark::State& state) {
  Rng rng(1);
  ecc::Codeword72 word = ecc::Secded72::encode(rng.next());
  ecc::Secded72::flip_bit(word, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc::Secded72::decode(word));
  }
}
BENCHMARK(BM_SecdedDecodeCorrect);

static void BM_CrashMarginEval(benchmark::State& state) {
  hw::Chip chip(hw::arm_soc_spec(), 1);
  const auto w = *stress::spec_profile("h264ref");
  const MegaHertz f = chip.spec().freq_nominal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.system_crash_voltage(w, f));
  }
}
BENCHMARK(BM_CrashMarginEval);

static void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_in(Seconds{static_cast<double>(i % 97)},
                            [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorThroughput);

BENCHMARK_MAIN();
