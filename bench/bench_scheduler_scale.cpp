// Datacenter-scale placement throughput: the capacity-indexed engine
// against the linear-scan reference on the same fleet-scale diurnal
// workload (trace::FleetTraceGenerator; default 10k nodes, 1M VMs).
//
// Two phases:
//   identity    every SchedulerPolicy, both engines, a workload prefix:
//               the decision digests must match bit-for-bit;
//   throughput  first-fit at full scale; the reference runs a prefix of
//               the same stream and its decision digest must equal the
//               indexed run's digest at the same prefix mark.
//
// Fleet construction is parallel (--jobs) but seeded per node with
// par::fork_streams, so node state — and therefore every placement
// decision — is bit-identical for any worker count. Emits
// BENCH_scheduler.json (ops/s, p99 pick latency, speedup, identity)
// for the perfsmoke regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "openstack/scheduler.h"
#include "openstack/scheduler_index.h"
#include "trace/fleet.h"

using namespace uniserver;

namespace {

constexpr std::uint64_t kFleetSeed = 20260806;

struct Options {
  int nodes{10000};
  std::uint64_t vms{1'000'000};
  unsigned jobs{0};  // 0 = hardware default
  std::string out{"BENCH_scheduler.json"};
  bool smoke{false};
};

std::vector<std::unique_ptr<osk::ComputeNode>> build_fleet(int count) {
  hw::NodeSpec spec;
  spec.chip = hw::arm_soc_spec();
  Rng rng(kFleetSeed);
  std::vector<Rng> streams =
      par::fork_streams(rng, static_cast<std::size_t>(count));
  auto nodes = par::parallel_map<std::unique_ptr<osk::ComputeNode>>(
      static_cast<std::size_t>(count), [&](std::size_t i) {
        auto node = std::make_unique<osk::ComputeNode>(
            "node-" + std::to_string(i), spec, hv::HvConfig{},
            streams[i].next());
        // Deterministic reliability spread in [0.90, 1.00] so the
        // reliability-aware policy has a real ordering to index and the
        // critical-VM floor (0.98) actually filters nodes.
        node->set_reliability(
            0.90 + 0.10 * Rng(streams[i].next()).uniform());
        return node;
      });
  return nodes;
}

void reset_fleet(std::vector<std::unique_ptr<osk::ComputeNode>>& fleet) {
  for (auto& node : fleet) {
    std::vector<std::uint64_t> ids;
    ids.reserve(node->hypervisor().vms().size());
    for (const auto& [id, vm] : node->hypervisor().vms()) ids.push_back(id);
    for (std::uint64_t id : ids) node->remove_vm(id);
  }
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

struct WorkloadRun {
  std::uint64_t picks{0};
  std::uint64_t accepted{0};
  /// Decision digest over the full run / at the prefix mark.
  std::uint64_t digest{1469598103934665603ULL};
  std::uint64_t digest_at_prefix{0};
  /// Time spent inside pick() calls.
  double pick_wall_s{0.0};
  double p99_us{0.0};

  double ops_per_s() const {
    return pick_wall_s > 0.0 ? static_cast<double>(picks) / pick_wall_s
                             : 0.0;
  }
};

struct Departure {
  double at{0.0};
  std::uint64_t id{0};
  osk::ComputeNode* node{nullptr};
  bool operator>(const Departure& other) const { return at > other.at; }
};

/// Replays the fleet-trace stream through one engine: tick-cadenced
/// weight refreshes, departures retired before each arrival, every
/// pick timed and folded into the decision digest.
WorkloadRun run_workload(osk::SchedulerEngine kind,
                         osk::SchedulerPolicy policy,
                         std::vector<std::unique_ptr<osk::ComputeNode>>& fleet,
                         const trace::FleetTraceConfig& trace_config,
                         std::uint64_t vms, std::uint64_t prefix_mark) {
  WorkloadRun out;
  std::vector<osk::ComputeNode*> ptrs;
  ptrs.reserve(fleet.size());
  for (auto& node : fleet) ptrs.push_back(node.get());

  auto engine = osk::make_placement_engine(kind, policy);
  engine->bind(ptrs);

  std::unordered_map<const osk::ComputeNode*, int> slot_of;
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    slot_of[ptrs[i]] = static_cast<int>(i);
  }

  trace::FleetTraceGenerator stream(trace_config, kFleetSeed + 1);
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(vms));

  const double tick_s = 60.0;
  double next_refresh = tick_s;
  for (std::uint64_t i = 0; i < vms; ++i) {
    std::optional<trace::VmRequest> request = stream.next();
    if (!request.has_value()) break;
    while (!departures.empty() && departures.top().at <= request->arrival.value) {
      const Departure done = departures.top();
      departures.pop();
      done.node->remove_vm(done.id);
      engine->node_changed(done.node);
    }
    while (next_refresh <= request->arrival.value) {
      engine->refresh_weights();
      next_refresh += tick_s;
    }
    const hv::Vm vm = osk::vm_from_request(*request);

    const auto start = std::chrono::steady_clock::now();
    osk::ComputeNode* target =
        engine->pick(vm, vm.requirements.critical);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ++out.picks;
    out.pick_wall_s += us * 1e-6;
    latencies_us.push_back(us);

    int slot = -1;
    if (target != nullptr) {
      slot = slot_of[target];
      if (!target->place_vm(vm)) {
        std::fprintf(stderr, "pick promised capacity that placement "
                             "refused (vm %llu)\n",
                     static_cast<unsigned long long>(vm.id));
        std::exit(2);
      }
      engine->node_changed(target);
      ++out.accepted;
      departures.push(Departure{
          request->arrival.value + request->lifetime.value, vm.id, target});
    }
    out.digest = fnv_mix(out.digest, vm.id);
    out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(
                                         static_cast<std::int64_t>(slot)));
    if (out.picks == prefix_mark) out.digest_at_prefix = out.digest;
  }
  if (out.picks == prefix_mark) out.digest_at_prefix = out.digest;

  std::sort(latencies_us.begin(), latencies_us.end());
  if (!latencies_us.empty()) {
    const auto idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies_us.size() - 1));
    out.p99_us = latencies_us[idx];
  }
  reset_fleet(fleet);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      options.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--vms") == 0 && i + 1 < argc) {
      options.vms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    }
  }
  if (options.smoke) {
    options.nodes = 512;
    options.vms = 20'000;
  }
  par::set_default_jobs(options.jobs);

  trace::FleetTraceConfig trace_config;
  trace_config.nodes = options.nodes;
  trace_config.vms = options.vms;

  std::printf("building %d-node fleet (--jobs %u)...\n", options.nodes,
              options.jobs);
  auto fleet = build_fleet(options.nodes);

  // Phase 1: decision identity, every policy, both engines.
  const std::uint64_t identity_vms =
      std::min<std::uint64_t>(options.vms, options.smoke ? 4'000 : 50'000);
  bool identical = true;
  TextTable identity_table("Placement identity (indexed vs reference, " +
                           std::to_string(identity_vms) + " VMs)");
  identity_table.set_header({"policy", "accepted", "digest match"});
  for (osk::SchedulerPolicy policy : osk::all_scheduler_policies()) {
    const WorkloadRun indexed =
        run_workload(osk::SchedulerEngine::kIndexed, policy, fleet,
                     trace_config, identity_vms, identity_vms);
    const WorkloadRun reference =
        run_workload(osk::SchedulerEngine::kReference, policy, fleet,
                     trace_config, identity_vms, identity_vms);
    const bool same = indexed.digest == reference.digest &&
                      indexed.accepted == reference.accepted;
    identical = identical && same;
    identity_table.add_row({osk::to_string(policy),
                            std::to_string(indexed.accepted),
                            same ? "yes" : "NO"});
  }
  identity_table.print();

  // Phase 2: throughput at scale. The reference replays a prefix of the
  // same stream; its digest must equal the indexed digest at the mark.
  const std::uint64_t reference_vms =
      std::min<std::uint64_t>(options.vms, options.smoke ? 4'000 : 100'000);
  std::printf("\nthroughput: indexed %llu VMs, reference %llu VMs...\n",
              static_cast<unsigned long long>(options.vms),
              static_cast<unsigned long long>(reference_vms));
  const WorkloadRun indexed =
      run_workload(osk::SchedulerEngine::kIndexed,
                   osk::SchedulerPolicy::kFirstFit, fleet, trace_config,
                   options.vms, reference_vms);
  const WorkloadRun reference =
      run_workload(osk::SchedulerEngine::kReference,
                   osk::SchedulerPolicy::kFirstFit, fleet, trace_config,
                   reference_vms, reference_vms);
  const bool prefix_same =
      indexed.digest_at_prefix == reference.digest_at_prefix;
  identical = identical && prefix_same;
  const double speedup = reference.ops_per_s() > 0.0
                             ? indexed.ops_per_s() / reference.ops_per_s()
                             : 0.0;

  TextTable table("Placement throughput, " + std::to_string(options.nodes) +
                  " nodes");
  table.set_header({"engine", "picks", "ops/s", "p99 [us]", "speedup"});
  table.add_row({"reference", std::to_string(reference.picks),
                 TextTable::num(reference.ops_per_s(), 0),
                 TextTable::num(reference.p99_us, 2), "1.00x"});
  table.add_row({"indexed", std::to_string(indexed.picks),
                 TextTable::num(indexed.ops_per_s(), 0),
                 TextTable::num(indexed.p99_us, 2),
                 TextTable::num(speedup, 2) + "x"});
  table.print();
  std::printf("prefix decision digests: %s\n",
              prefix_same ? "identical" : "DIVERGED");

  std::FILE* json = std::fopen(options.out.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"scheduler_scale\",\n"
                 "  \"nodes\": %d,\n"
                 "  \"vms\": %llu,\n"
                 "  \"smoke\": %s,\n"
                 "  \"indexed_ops_per_s\": %.1f,\n"
                 "  \"reference_ops_per_s\": %.1f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"indexed_p99_us\": %.3f,\n"
                 "  \"reference_p99_us\": %.3f,\n"
                 "  \"identical\": %s\n"
                 "}\n",
                 options.nodes,
                 static_cast<unsigned long long>(options.vms),
                 options.smoke ? "true" : "false", indexed.ops_per_s(),
                 reference.ops_per_s(), speedup, indexed.p99_us,
                 reference.p99_us, identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", options.out.c_str());
  }
  par::set_default_jobs(0);

  if (!identical) {
    std::printf("\nFAIL: engines diverged\n");
    return 1;
  }
  std::printf("\nindexed engine %.2fx reference at %d nodes, decisions "
              "bit-identical\n",
              speedup, options.nodes);
  return 0;
}
