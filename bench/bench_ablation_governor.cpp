// Ablation A7: workload-aware margins vs the virus-derived floor
// (paper §3.B: "real-life workloads will probably allow even more
// efficient margins since they produce significant less voltage noise
// ... compared to stress viruses").
//
// The governor runs a day on a node whose load alternates between calm
// (mcf-like) and noisy (h264ref-like) phases. With workload-aware
// margins it harvests the calm phases' extra headroom; the hazard is a
// phase flip landing before the next governor decision. Reported per
// decision period: mean power, extra undervolt harvested, crashes.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/governor.h"
#include "core/uniserver_node.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

struct Outcome {
  double mean_power_w{0.0};
  double mean_undervolt{0.0};
  std::uint64_t crashes{0};
  std::uint64_t canary_events{0};
};

Outcome run_day(bool workload_aware, double risk_budget,
                Seconds governor_period, std::uint64_t seed) {
  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.shmoo.runs = 1;
  config.predictor_epochs = 15;
  // Disable core isolation for this ablation: deep workload-aware
  // points fire the ECC canary by design, and retiring cores would
  // evict the VM and mask the margins effect being measured.
  config.hv.core_isolation_threshold_per_hour = 1e12;
  core::UniServerNode node(config, seed);
  node.characterize();

  core::GovernorConfig governor_config;
  governor_config.workload_aware = workload_aware;
  governor_config.risk_budget = risk_budget;
  core::EopGovernor governor(governor_config);

  // Alternating phases: 40 min calm, 20 min noisy.
  const auto calm = *stress::spec_profile("mcf");
  const auto noisy = *stress::spec_profile("h264ref");

  Outcome outcome;
  double power_sum = 0.0;
  double undervolt_sum = 0.0;
  int ticks = 0;
  Seconds last_decision{-1e9};
  const Seconds tick{60.0};
  Rng vm_rng(seed);

  hv::Vm vm;
  vm.id = 1;
  vm.vcpus = 6;
  vm.memory_mb = 8192.0;
  vm.workload = calm;
  node.hypervisor().create_vm(vm);

  bool noisy_phase = false;
  for (double t = 0.0; t < 24.0 * 3600.0; t += tick.value) {
    if (t - last_decision.value >= governor_period.value) {
      last_decision = Seconds{t};
      // The governor sees the signature at decision time — a calm
      // reading goes stale the moment the guest flips phase, and the
      // deep EOP holds until the next decision.
      const hw::Eop eop = governor.decide(
          node.margins(), node.predictor(), node.server().chip(),
          node.hypervisor().aggregate_signature(), 0.85,
          node.margins().current().safe_refresh);
      node.hypervisor().apply_eop(eop);
    }

    // The guest flips phase on its own schedule (mean phase ~20 min),
    // deliberately uncorrelated with the governor period.
    if (vm_rng.bernoulli(tick.value / 1200.0)) noisy_phase = !noisy_phase;
    node.hypervisor().destroy_vm(1);
    vm.workload = noisy_phase ? noisy : calm;
    node.hypervisor().create_vm(vm);

    const hv::TickReport report = node.step(tick);
    outcome.canary_events += report.cache_ecc_masked;
    power_sum += report.avg_power.value;
    undervolt_sum += hw::undervolt_percent(
        config.node_spec.chip.vdd_nominal, node.server().eop().vdd);
    ++ticks;
    if (report.node_crash) {
      ++outcome.crashes;
      if (!node.hypervisor().vms().contains(1)) {
        node.hypervisor().create_vm(vm);
      }
    }
  }
  outcome.mean_power_w = power_sum / ticks;
  outcome.mean_undervolt = undervolt_sum / ticks;
  return outcome;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A7: virus-floor vs workload-aware margins (phased load, "
      "24 h)");
  table.set_header({"margins", "risk budget", "mean undervolt",
                    "mean power [W]", "ECC canary events", "node crashes"});
  const Seconds period{60.0};
  {
    const Outcome outcome = run_day(false, 0.02, period, 2025);
    table.add_row({"virus floor", "-", TextTable::pct(outcome.mean_undervolt, 1),
                   TextTable::num(outcome.mean_power_w, 1),
                   std::to_string(outcome.canary_events),
                   std::to_string(outcome.crashes)});
  }
  for (const double budget : {0.02, 0.005, 0.001}) {
    const Outcome outcome = run_day(true, budget, period, 2025);
    table.add_row({"workload-aware", TextTable::num(budget, 3),
                   TextTable::pct(outcome.mean_undervolt, 1),
                   TextTable::num(outcome.mean_power_w, 1),
                   std::to_string(outcome.canary_events),
                   std::to_string(outcome.crashes)});
  }
  table.print();
  std::printf(
      "\nexpected shape: workload-aware margins buy ~2%% extra undervolt, "
      "but every decision re-spends the predictor's risk budget (0.02 x "
      "1440 decisions/day piles up crashes), and tightening the budget "
      "makes the statistical model refuse even points the stress test "
      "*proved* safe — at 0.001 it underperforms the floor. A guaranteed "
      "characterization beats a confident model: exactly why the paper "
      "anchors on virus-derived margins and treats workload-specific "
      "headroom as opportunistic.\n");
  return 0;
}
