// TCO tool exploration (paper innovation vii): data-center design-space
// sweep plus the Cloud-vs-Edge per-request economics — the "capital and
// operational expenses" view of where UniServer deployments pay off.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/parallel.h"
#include "common/table.h"
#include "tco/explorer.h"

using namespace uniserver;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      par::set_default_jobs(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    }
  }
  tco::TcoExplorer explorer;

  // --- design-space sweep for the edge deployment --------------------
  const tco::DatacenterSpec base = tco::edge_datacenter_spec();
  const std::vector<tco::SweepDimension> dims{
      tco::TcoExplorer::electricity_price_usd({0.08, 0.12, 0.20}),
      tco::TcoExplorer::pue({1.05, 1.1, 1.3}),
      tco::TcoExplorer::server_power_w({25.0, 35.0, 50.0}),
  };

  TextTable sweep("Edge design-space sweep (27 points, margins EE 1.5x)");
  sweep.set_header({"electricity", "PUE", "server W", "TCO/yr",
                    "$/server/yr"});
  const auto points = explorer.sweep(base, dims, /*ee_factor=*/1.5);
  // Print the frontier rows: cheapest three and costliest one.
  auto sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const tco::DesignPoint& a, const tco::DesignPoint& b) {
              return a.breakdown.total().value < b.breakdown.total().value;
            });
  auto emit = [&sweep](const tco::DesignPoint& point) {
    sweep.add_row({"$" + TextTable::num(point.spec.electricity_per_kwh.value,
                                        2),
                   TextTable::num(point.spec.pue, 2),
                   TextTable::num(point.spec.server_avg_power.value, 0),
                   "$" + TextTable::num(point.breakdown.total().value, 0),
                   "$" + TextTable::num(point.cost_per_server_year.value,
                                        0)});
  };
  for (std::size_t i = 0; i < 3; ++i) emit(sorted[i]);
  sweep.add_row({"...", "", "", "", ""});
  emit(sorted.back());
  sweep.print();

  const auto& best = tco::TcoExplorer::cheapest(points);
  std::printf("\ncheapest configuration: %.0f W servers at PUE %.2f, "
              "$%.2f/kWh -> $%.0f/yr for %d micro-servers\n\n",
              best.spec.server_avg_power.value, best.spec.pue,
              best.spec.electricity_per_kwh.value,
              best.breakdown.total().value, best.spec.servers);

  // --- Cloud vs Edge per-request economics ---------------------------
  TextTable economics("Cloud vs Edge cost per million requests");
  economics.set_header({"WAN $/M requests", "cloud $/M", "edge $/M",
                        "winner"});
  const tco::DatacenterSpec cloud = tco::cloud_datacenter_spec();
  const tco::DatacenterSpec edge = tco::edge_datacenter_spec();
  const double cloud_rps = 2000.0;  // beefy cloud server
  const double edge_rps = 500.0;    // micro-server
  for (const double wan : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const auto comparison = explorer.compare_edge_cloud(
        cloud, edge, cloud_rps, edge_rps, Dollar{wan});
    economics.add_row(
        {"$" + TextTable::num(wan, 2),
         "$" + TextTable::num(comparison.cloud_cost_per_million.value, 2),
         "$" + TextTable::num(comparison.edge_cost_per_million.value, 2),
         comparison.edge_wins ? "edge" : "cloud"});
  }
  economics.print();
  const auto comparison = explorer.compare_edge_cloud(
      cloud, edge, cloud_rps, edge_rps, Dollar{0.0});
  std::printf("\nbreak-even WAN price: $%.2f per million requests — above "
              "it the edge deployment wins on cost alone, before counting "
              "the latency benefit (paper SS6.D)\n",
              comparison.breakeven_wan_cost_per_million.value);
  return 0;
}
