// Ablation A10: strong-core-first allocation (paper §3.A: "each
// resource may perform better or worse than others... In UniServer we
// plan to characterize each core... individually. This information will
// be revealed to software and can be exploited towards better
// energy-efficiency").
//
// The system crash point is set by the weakest ACTIVE core. At partial
// load, activating the strongest cores first moves that point down and
// unlocks deeper undervolt. The harness sweeps the active vCPU count
// under naive (index-order) and strong-first allocation, reporting the
// exploitable undervolt and the power at a matched guard band.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/eop.h"
#include "hwmodel/platform.h"
#include "stress/profiles.h"

using namespace uniserver;

int main() {
  const auto w = *stress::spec_profile("bzip2");
  TextTable table(
      "Ablation A10: per-core heterogeneity exploit (ARM SoC, bzip2, "
      "mean over 50 parts)");
  table.set_header({"active vCPUs", "naive undervolt", "strong-first "
                    "undervolt", "extra margin", "power saving at matched "
                    "guard"});

  for (const int active : {1, 2, 4, 6, 8}) {
    Accumulator naive_offsets;
    Accumulator strong_offsets;
    Accumulator power_savings;
    Rng rng(808);
    for (int part = 0; part < 50; ++part) {
      const std::uint64_t seed = rng.next();
      hw::NodeSpec naive_spec;
      naive_spec.chip = hw::arm_soc_spec();
      naive_spec.strong_cores_first = false;
      hw::NodeSpec strong_spec = naive_spec;
      strong_spec.strong_cores_first = true;
      const hw::ServerNode naive_node(naive_spec, seed);
      const hw::ServerNode strong_node(strong_spec, seed);

      const Volt vnom = naive_spec.chip.vdd_nominal;
      const double naive_offset = hw::undervolt_percent(
          vnom, naive_node.active_crash_voltage(w, active));
      const double strong_offset = hw::undervolt_percent(
          vnom, strong_node.active_crash_voltage(w, active));
      naive_offsets.add(naive_offset);
      strong_offsets.add(strong_offset);

      // Run both at (their own crash - 1% guard): same risk, the
      // strong-first node simply sits lower.
      const auto& power = naive_node.chip().power();
      const Volt naive_v =
          hw::apply_undervolt_percent(vnom, naive_offset - 1.0);
      const Volt strong_v =
          hw::apply_undervolt_percent(vnom, strong_offset - 1.0);
      const double p_naive =
          power.steady_state(naive_v, naive_spec.chip.freq_nominal,
                             w.activity, active)
              .power.value;
      const double p_strong =
          power.steady_state(strong_v, naive_spec.chip.freq_nominal,
                             w.activity, active)
              .power.value;
      power_savings.add(1.0 - p_strong / p_naive);
    }
    table.add_row({std::to_string(active),
                   TextTable::pct(naive_offsets.mean(), 1),
                   TextTable::pct(strong_offsets.mean(), 1),
                   TextTable::pct(strong_offsets.mean() -
                                      naive_offsets.mean(),
                                  1),
                   TextTable::pct(power_savings.mean() * 100.0, 1)});
  }
  table.print();
  std::printf(
      "\nexpected shape: with every core active the two policies match "
      "(the weakest core is always in the set); at partial load "
      "strong-first unlocks the gap between the weakest and the "
      "k-th-strongest core — a pure software win from per-core "
      "characterization.\n");
  return 0;
}
