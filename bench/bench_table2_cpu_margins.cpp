// Reproduces Table 2: "Initial results for two Intel microprocessors".
//
// Protocol (paper §6.A): two x86-64 parts — a low-end i5-4200U
// (0.844 V, 2.6 GHz) and a high-end i7-3970X (1.365 V, 4.0 GHz) — run 8
// SPEC CPU2006 benchmarks, 3 consecutive runs each, stepping the
// voltage offset below nominal VID until the system crashes. Reported:
//   - min/max crash offset across benchmarks (first core to die),
//   - min/max core-to-core variation across benchmarks,
//   - min/max correctable cache ECC error counts (low-end part only),
//   - the average gap between ECC-error onset and the crash point.
#include <cstdio>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "hwmodel/chip.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"
#include "stress/shmoo.h"

using namespace uniserver;

namespace {

struct ChipRow {
  double crash_min{std::numeric_limits<double>::infinity()};
  double crash_max{0.0};
  double c2c_min{std::numeric_limits<double>::infinity()};
  double c2c_max{0.0};
  std::uint64_t ecc_min{std::numeric_limits<std::uint64_t>::max()};
  std::uint64_t ecc_max{0};
  bool ecc_seen{false};
  double onset_gap_mv_sum{0.0};
  int onset_gap_count{0};
};

ChipRow characterize(const hw::ChipSpec& spec, std::uint64_t seed) {
  hw::Chip chip(spec, seed);
  stress::ShmooConfig config;
  config.step_percent = 0.2;
  config.runs = 3;
  config.step_duration = Seconds{10.0};
  stress::ShmooCharacterizer characterizer(config);
  Rng rng(seed ^ 0x7AB1E2ULL);

  ChipRow row;
  for (const auto& w : stress::spec2006_profiles()) {
    const auto summary =
        characterizer.characterize_chip(chip, w, spec.freq_nominal, rng);
    row.crash_min = std::min(row.crash_min, summary.system_crash_offset);
    row.crash_max = std::max(row.crash_max, summary.system_crash_offset);
    row.c2c_min = std::min(row.c2c_min, summary.core_to_core_variation);
    row.c2c_max = std::max(row.c2c_max, summary.core_to_core_variation);
    for (const auto& core : summary.per_core) {
      for (const auto& run : core.runs) {
        if (run.ecc_errors > 0) {
          row.ecc_seen = true;
          row.ecc_min = std::min(row.ecc_min, run.ecc_errors);
          row.ecc_max = std::max(row.ecc_max, run.ecc_errors);
        }
        if (run.ecc_onset_offset_percent >= 0.0) {
          const double gap_pct =
              run.crash_offset_percent - run.ecc_onset_offset_percent;
          row.onset_gap_mv_sum +=
              gap_pct / 100.0 * spec.vdd_nominal.millivolts();
          ++row.onset_gap_count;
        }
      }
    }
  }
  return row;
}

std::string range(double lo, double hi, int precision = 1) {
  return "-" + TextTable::num(lo, precision) + "% / -" +
         TextTable::num(hi, precision) + "%";
}

}  // namespace

int main() {
  const ChipRow i5 = characterize(hw::i5_4200u_spec(), 42);
  const ChipRow i7 = characterize(hw::i7_3970x_spec(), 42);

  TextTable table("Table 2: Initial results for two Intel microprocessors");
  table.set_header({"metric", "i5-4200U (min/max)", "i7-3970X (min/max)",
                    "paper i5", "paper i7"});
  table.add_row({"crash points below nominal VID",
                 range(i5.crash_min, i5.crash_max),
                 range(i7.crash_min, i7.crash_max), "-10% / -11.2%",
                 "-8.4% / -15.4%"});
  table.add_row({"core-to-core variation",
                 TextTable::pct(i5.c2c_min) + " / " + TextTable::pct(i5.c2c_max),
                 TextTable::pct(i7.c2c_min) + " / " + TextTable::pct(i7.c2c_max),
                 "0% / 2.7%", "3.7% / 8%"});
  table.add_row({"number of cache ECC errors",
                 i5.ecc_seen ? std::to_string(i5.ecc_min) + " / " +
                                   std::to_string(i5.ecc_max)
                             : "-",
                 i7.ecc_seen ? std::to_string(i7.ecc_min) + " / " +
                                   std::to_string(i7.ecc_max)
                             : "-",
                 "1 / 17", "-"});
  table.print();

  if (i5.onset_gap_count > 0) {
    std::printf(
        "\nECC errors begin on average %.1f mV above the crash point "
        "(paper: ~15 mV)\n",
        i5.onset_gap_mv_sum / i5.onset_gap_count);
  }
  return 0;
}
