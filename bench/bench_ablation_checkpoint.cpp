// Ablation A8: the hypervisor's error-masking ladder under relaxed
// refresh (paper §4.A: the hypervisor must "transparently mask errors
// from upper software layers").
//
// Four rungs, cumulative: nothing -> reliable domain (hypervisor
// shielded) -> + VM checkpointing (guests roll back instead of dying)
// -> + channel isolation (error-fountain channels pinned back to
// nominal). A day at an aggressive 5 s refresh interval; the ladder
// converts catastrophic loss into bounded rollbacks, then removes the
// error source entirely — each rung paying a little power.
#include <cstdio>

#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/platform.h"
#include "hypervisor/hypervisor.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

struct Outcome {
  std::uint64_t vm_kills{0};
  std::uint64_t vm_restores{0};
  std::uint64_t hv_fatal{0};
  int isolated_channels{0};
  double energy_kwh{0.0};
};

Outcome run_day(bool domains, bool checkpoint, bool channel_isolation,
                std::uint64_t seed) {
  hw::NodeSpec spec;
  spec.chip = hw::arm_soc_spec();
  hw::ServerNode node(spec, seed);
  hv::HvConfig config;
  config.use_reliable_domain = domains;
  config.selective_protection = false;
  config.vm_checkpointing = checkpoint;
  config.guest_sdc_survival = 0.3;
  config.channel_isolation_threshold_per_hour =
      channel_isolation ? 20.0 : 1e12;
  hv::Hypervisor hypervisor(node, config, seed);

  hv::Vm vm;
  vm.id = 1;
  vm.vcpus = 6;
  vm.memory_mb = 16384.0;
  vm.workload = stress::ldbc_profile();
  hypervisor.create_vm(vm);

  hw::Eop eop = node.eop();
  eop.refresh = Seconds{5.0};
  hypervisor.apply_eop(eop);

  Outcome outcome;
  for (int i = 0; i < 24 * 60; ++i) {
    const hv::TickReport report = hypervisor.tick(Seconds{60.0 * i}, 60_s);
    outcome.vm_kills += report.vms_killed.size();
    outcome.vm_restores += report.vms_restored.size();
    if (report.hypervisor_fatal) ++outcome.hv_fatal;
    outcome.energy_kwh += report.energy.kwh();
    if (!hypervisor.vms().contains(1)) hypervisor.create_vm(vm);
  }
  outcome.isolated_channels =
      static_cast<int>(hypervisor.isolated_channels().size());
  return outcome;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A8: error-masking ladder at 5 s refresh (24 h, loaded)");
  table.set_header({"configuration", "HV-fatal", "VM kills", "VM restores",
                    "channels isolated", "energy [kWh]"});
  struct Rung {
    const char* name;
    bool domains;
    bool checkpoint;
    bool isolation;
  };
  const Rung rungs[] = {
      {"bare (nothing enabled)", false, false, false},
      {"+ reliable domain", true, false, false},
      {"+ VM checkpointing", true, true, false},
      {"+ channel isolation", true, true, true},
  };
  for (const Rung& rung : rungs) {
    const Outcome outcome =
        run_day(rung.domains, rung.checkpoint, rung.isolation, 515);
    table.add_row({rung.name, std::to_string(outcome.hv_fatal),
                   std::to_string(outcome.vm_kills),
                   std::to_string(outcome.vm_restores),
                   std::to_string(outcome.isolated_channels),
                   TextTable::num(outcome.energy_kwh, 3)});
  }
  table.print();
  std::printf(
      "\nexpected shape: the reliable domain removes hypervisor fatality; "
      "checkpointing converts guest kills into bounded rollbacks at ~1%% "
      "energy; channel isolation then starves the error source (restores "
      "stop) at the cost of the isolated channels' refresh power.\n");
  return 0;
}
