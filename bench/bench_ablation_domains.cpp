// Ablation A2: reliable-memory-domain placement and selective
// protection under relaxed refresh.
//
// The paper's §6.B instrument isolates critical kernel code and data in
// a nominal-refresh domain "to avoid any system crash" while the rest
// of memory relaxes. This harness simulates 24 h of a loaded node at
// several refresh intervals and counts hypervisor-fatal events with
// the reliable domain / selective protection toggled.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/platform.h"
#include "hypervisor/hypervisor.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

struct Outcome {
  std::uint64_t hv_fatal{0};
  std::uint64_t vm_kills{0};
  std::uint64_t dram_errors{0};
};

Outcome simulate(Seconds refresh, bool reliable_domain, bool protection,
                 std::uint64_t seed) {
  hw::NodeSpec spec;
  spec.chip = hw::arm_soc_spec();
  hw::ServerNode server(spec, seed);

  hv::HvConfig config;
  config.use_reliable_domain = reliable_domain;
  config.selective_protection = protection;
  // Channel isolation would heal the error fountain mid-run and mask
  // the domain/protection effect; it is ablated separately (A8).
  config.channel_isolation_threshold_per_hour = 1e12;
  hv::Hypervisor hypervisor(server, config, seed);

  hw::Eop eop;
  eop.vdd = spec.chip.vdd_nominal;  // isolate the refresh effect
  eop.freq = spec.chip.freq_nominal;
  eop.refresh = refresh;
  server.set_eop(eop);

  // Two resident VMs generate load and occupy relaxed memory.
  for (std::uint64_t id = 1; id <= 2; ++id) {
    hv::Vm vm;
    vm.id = id;
    vm.vcpus = 3;
    vm.memory_mb = 8192.0;
    vm.workload = stress::ldbc_profile();
    hypervisor.create_vm(vm);
  }

  Outcome outcome;
  const Seconds window{60.0};
  for (Seconds t{0.0}; t.value < 24.0 * 3600.0; t += window) {
    const hv::TickReport report = hypervisor.tick(t, window);
    outcome.dram_errors += report.dram_errors_relaxed;
    outcome.vm_kills += report.vms_killed.size();
    if (report.hypervisor_fatal) ++outcome.hv_fatal;
    // Re-create killed VMs so pressure stays constant.
    for (std::uint64_t id = 1; id <= 2; ++id) {
      if (!hypervisor.vms().contains(id)) {
        hv::Vm vm;
        vm.id = id;
        vm.vcpus = 3;
        vm.memory_mb = 8192.0;
        vm.workload = stress::ldbc_profile();
        hypervisor.create_vm(vm);
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A2: 24 h at relaxed refresh (ARM node, 2 VMs, nominal V-F)");
  table.set_header({"refresh", "domains", "protection", "DRAM errors",
                    "VM kills", "HV-fatal events"});
  std::uint64_t seed = 1000;
  for (const Seconds refresh : {1500_ms, 3000_ms, Seconds{5.0}}) {
    for (const bool domains : {false, true}) {
      for (const bool protection : {false, true}) {
        const Outcome outcome =
            simulate(refresh, domains, protection, seed);
        table.add_row({TextTable::num(refresh.value, 1) + " s",
                       domains ? "on" : "off", protection ? "on" : "off",
                       std::to_string(outcome.dram_errors),
                       std::to_string(outcome.vm_kills),
                       std::to_string(outcome.hv_fatal)});
      }
    }
    seed += 17;
  }
  table.print();
  std::printf(
      "\nexpected shape: without domains the hypervisor absorbs decay hits "
      "and dies; the reliable domain removes HV exposure entirely, and "
      "selective protection mops up the remainder.\n");
  return 0;
}
