// Ablation A6: ECC DIMMs under relaxed refresh.
//
// The paper characterizes DRAM with "ECC disabled" and separately notes
// that classical ECC-SECDED absorbs raw error rates up to ~1e-6 [27].
// This harness quantifies what ECC buys at aggressive refresh
// relaxation: the same 24 h loaded-node simulation with ECC DIMMs on
// and off — decay events are then corrected in hardware unless two
// weak cells collide in one 72-bit word.
#include <cstdio>

#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/platform.h"
#include "hypervisor/hypervisor.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

struct Outcome {
  std::uint64_t ecc_masked{0};
  std::uint64_t uncorrectable{0};
  std::uint64_t vm_kills{0};
  std::uint64_t hv_fatal{0};
};

Outcome simulate(Seconds refresh, bool ecc, std::uint64_t seed) {
  hw::NodeSpec spec;
  spec.chip = hw::arm_soc_spec();
  spec.dimm.ecc = ecc;
  hw::ServerNode server(spec, seed);
  hv::HvConfig config;
  config.use_reliable_domain = false;  // expose everything; ECC is the test
  config.selective_protection = false;
  // Channel isolation (ablated in A8) would starve the error stream
  // that DIMM ECC is being measured against.
  config.channel_isolation_threshold_per_hour = 1e12;
  hv::Hypervisor hypervisor(server, config, seed);

  for (std::uint64_t id = 1; id <= 2; ++id) {
    hv::Vm vm;
    vm.id = id;
    vm.vcpus = 3;
    vm.memory_mb = 8192.0;
    vm.workload = stress::ldbc_profile();
    hypervisor.create_vm(vm);
  }
  hw::Eop eop = server.eop();
  eop.refresh = refresh;
  hypervisor.apply_eop(eop);

  Outcome outcome;
  for (int i = 0; i < 24 * 60; ++i) {
    const hv::TickReport report =
        hypervisor.tick(Seconds{60.0 * i}, 60_s);
    outcome.ecc_masked += report.dram_ecc_masked;
    outcome.uncorrectable += report.dram_errors_relaxed;
    outcome.vm_kills += report.vms_killed.size();
    if (report.hypervisor_fatal) ++outcome.hv_fatal;
    for (std::uint64_t id = 1; id <= 2; ++id) {
      if (!hypervisor.vms().contains(id)) {
        hv::Vm vm;
        vm.id = id;
        vm.vcpus = 3;
        vm.memory_mb = 8192.0;
        vm.workload = stress::ldbc_profile();
        hypervisor.create_vm(vm);
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A6: ECC DIMMs x refresh relaxation (24 h, loaded node, "
      "no reliable domain)");
  table.set_header({"refresh", "ECC", "corrected in HW", "uncorrectable",
                    "VM kills", "HV-fatal events"});
  std::uint64_t seed = 4000;
  for (const Seconds refresh : {1500_ms, 3000_ms, Seconds{5.0}}) {
    for (const bool ecc : {false, true}) {
      const Outcome outcome = simulate(refresh, ecc, seed);
      table.add_row({TextTable::num(refresh.value, 1) + " s",
                     ecc ? "on" : "off",
                     std::to_string(outcome.ecc_masked),
                     std::to_string(outcome.uncorrectable),
                     std::to_string(outcome.vm_kills),
                     std::to_string(outcome.hv_fatal)});
    }
    seed += 31;
  }
  table.print();
  std::printf(
      "\nexpected shape: weak cells almost never share a 72-bit word, so "
      "SECDED masks essentially every decay event — ECC turns the 5 s "
      "refresh point from unusable into quiet (paper [27]: SECDED is good "
      "to raw rates of ~1e-6; the 5 s BER here is ~1e-9).\n");
  return 0;
}
