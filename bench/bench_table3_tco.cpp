// Reproduces Table 3: "Energy efficiency and TCO improvement
// estimations along with the sources of improvement [31]".
//
// The PDF's table row is scrambled; the only assignment consistent with
// an overall 36x EE improvement and the text's "energy efficiency gains
// alone give 1.15x TCO" is: technology scaling 4x, software maturity
// 2x, fog (edge) 3x, margins (EOP) 1.5x -> 4*2*3*1.5 = 36x. The TCO
// model then shows that with the energy share of a realistic
// deployment, a 36x energy-efficiency improvement buys ~1.15x TCO, and
// more once yield-driven chip-cost reductions are included.
#include <cstdio>

#include "common/table.h"
#include "tco/tco.h"

using namespace uniserver;

int main() {
  const tco::EeImprovement ee;

  TextTable table3("Table 3: EE and TCO improvement estimations");
  table3.set_header({"scaling", "sw maturity", "fog", "margins",
                     "EE overall", "TCO"});

  const tco::TcoModel model;
  const tco::DatacenterSpec cloud = tco::cloud_datacenter_spec();
  const double tco_gain = model.tco_improvement(cloud, ee.overall(),
                                                /*reprovision_infra=*/false);
  table3.add_row({TextTable::num(ee.technology_scaling, 2),
                  TextTable::num(ee.software_maturity, 0),
                  TextTable::num(ee.fog, 0), TextTable::num(ee.margins, 1),
                  TextTable::num(ee.overall(), 0),
                  TextTable::num(tco_gain, 2)});
  table3.add_row({"4", "2", "3", "1.5", "36", "1.15  (paper)"});
  table3.print();

  const tco::TcoBreakdown baseline = model.compute(cloud);
  std::printf(
      "\ncloud deployment baseline (per year): servers $%.0f, infra $%.0f, "
      "energy $%.0f, maintenance $%.0f -> energy share %.1f%%\n",
      baseline.server_capex.value, baseline.infra_capex.value,
      baseline.energy_opex.value, baseline.maintenance_opex.value,
      baseline.energy_share() * 100.0);

  TextTable detail("TCO improvement vs EE factor (cloud deployment)");
  detail.set_header({"EE factor", "TCO gain (existing infra)",
                     "TCO gain (re-provisioned infra)",
                     "TCO gain (+20% yield capex cut)"});
  for (const double factor : {1.5, 3.0, 6.0, 12.0, 36.0}) {
    detail.add_row(
        {TextTable::num(factor, 1) + "x",
         TextTable::num(model.tco_improvement(cloud, factor, false), 3) + "x",
         TextTable::num(model.tco_improvement(cloud, factor, true), 3) + "x",
         TextTable::num(model.tco_improvement_with_yield(cloud, factor, 0.2),
                        3) +
             "x"});
  }
  detail.print();

  const tco::DatacenterSpec edge = tco::edge_datacenter_spec();
  const tco::TcoBreakdown edge_baseline = model.compute(edge);
  std::printf(
      "\nedge deployment baseline (per year, %d micro-servers): total "
      "$%.0f, energy share %.1f%% -> margins-only (1.5x) TCO gain %.3fx\n",
      edge.servers, edge_baseline.total().value,
      edge_baseline.energy_share() * 100.0,
      model.tco_improvement(edge, ee.margins, false));
  return 0;
}
