// Ablation A11: work per provisioned watt (the infrastructure half of
// the TCO argument — §5.A: "pessimistic design margins ... limit the
// returns from technology scaling"; the facility is provisioned in
// watts, so every stripped guard-band volt is capacity).
//
// Two identical racks under the same power cap serve the same arrival
// stream; one fleet runs at nominal voltage, the other commissioned at
// its characterized EOP. Reported: admitted VMs, power-cap rejections,
// rack utilization.
#include <cstdio>

#include "common/table.h"
#include "core/ecosystem.h"
#include "hwmodel/chip_spec.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

osk::CloudStats run_fleet(bool enable_eop, Watt cap,
                          const std::vector<trace::VmRequest>& requests) {
  core::EcosystemConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.nodes = 8;
  config.enable_eop = enable_eop;
  config.guard_percent = 1.0;
  config.shmoo.runs = 1;
  config.cloud.policy = osk::SchedulerPolicy::kFirstFit;
  config.cloud.tick = 60_s;
  config.cloud.nodes_per_rack = 4;
  config.cloud.rack_power_cap = cap;
  core::Ecosystem ecosystem(config, 9090);
  ecosystem.run(requests, Seconds{6.0 * 3600.0});
  return ecosystem.cloud().stats();
}

}  // namespace

int main() {
  trace::ArrivalConfig arrivals;
  arrivals.arrivals_per_hour = 30.0;
  arrivals.mean_lifetime = Seconds{4.0 * 3600.0};
  trace::VmArrivalStream stream(arrivals, 17);
  const auto requests = stream.generate(Seconds{6.0 * 3600.0});

  TextTable table(
      "Ablation A11: admitted work under a fixed rack power cap (2 racks "
      "x 4 nodes, 6 h)");
  table.set_header({"rack cap [W]", "fleet", "accepted", "rejected",
                    "rejected for power", "energy [kWh]"});
  for (const double cap : {120.0, 150.0, 200.0}) {
    for (const bool eop : {false, true}) {
      const osk::CloudStats stats = run_fleet(eop, Watt{cap}, requests);
      table.add_row({TextTable::num(cap, 0),
                     eop ? "UniServer (EOP)" : "conservative",
                     std::to_string(stats.accepted),
                     std::to_string(stats.rejected),
                     std::to_string(stats.rejected_for_power),
                     TextTable::num(stats.total_energy_kwh, 2)});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: the commissioned fleet draws less per VM, so the "
      "same provisioned rack power admits more work — power-cap "
      "rejections shrink or vanish. This is the capex side of Table 3's "
      "TCO gain (re-provisioned infrastructure).\n");
  return 0;
}
