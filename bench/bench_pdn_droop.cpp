// Supplemental: voltage-droop physics behind Table 1's ~20% guard-band.
//
// Prints (a) the PDN step response after a full load step — the classic
// first-droop ring-down — and (b) worst-case droop vs excitation
// frequency, showing the resonance peak an adversarial workload (or the
// GA's droop-resonator virus) would lock onto.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "hwmodel/pdn.h"
#include "telemetry/export.h"

using namespace uniserver;

int main() {
  const hw::PdnModel pdn{hw::PdnSpec{}};

  std::printf("== PDN step response (full load step at t=0) ==\n");
  const auto trace =
      pdn.step_response(1.0, Seconds::from_us(0.002), 24);
  for (std::size_t i = 0; i < trace.size(); i += 2) {
    const int depth = static_cast<int>(-trace[i] * 400.0);
    std::printf("t=%5.3f us  %+7.3f%%  |%s\n",
                0.002 * static_cast<double>(i), trace[i] * 100.0,
                std::string(static_cast<std::size_t>(std::max(0, depth)),
                            '#')
                    .c_str());
  }

  TextTable table("Worst-case droop vs excitation frequency (full swing)");
  table.set_header({"excitation [MHz]", "amplification", "droop",
                    "note"});
  for (const double mhz : {1.0, 10.0, 50.0, 80.0, 100.0, 125.0, 200.0,
                           400.0, 1000.0}) {
    const MegaHertz f{mhz};
    std::string note;
    if (mhz == 100.0) note = "<- resonance: the virus' operating point";
    table.add_row({TextTable::num(mhz, 0),
                   TextTable::num(pdn.amplification(f), 2) + "x",
                   TextTable::pct(pdn.worst_droop(0.0, 1.0, f) * 100.0),
                   note});
  }
  table.print();

  std::printf(
      "\ncalm workload droop (IR only): %.1f%%; resonant virus droop: "
      "%.1f%% -> the guard-band budget Table 1 ascribes to droops "
      "(~20%%) exists to absorb exactly this gap\n",
      pdn.droop_for_didt(0.0) * 100.0, pdn.droop_for_didt(1.0) * 100.0);

  // Plot-ready step response next to the ASCII ring-down.
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    series.push_back({0.002 * static_cast<double>(i), trace[i] * 100.0});
  }
  telemetry::save_series_csv("pdn_step_response.csv",
                             {"t_us", "droop_pct"}, series);
  return 0;
}
