// Ablation A1: node energy at nominal vs at the characterized EOP —
// the "margins 1.5x" energy-efficiency source of Table 3.
//
// Full UniServer flow per workload: StressLog characterization,
// Predictor training, Predictor-advised EOP, then steady-state power
// at nominal vs EOP in both execution modes (same-frequency
// high-performance undervolt, and half-frequency low-power point).
#include <cstdio>

#include "common/table.h"
#include "core/uniserver_node.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"

using namespace uniserver;

int main() {
  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.guard_percent = 1.0;
  config.shmoo.runs = 2;

  core::UniServerNode node(config, 3);
  const daemons::SafeMargins& margins = node.characterize();
  const auto advice = node.deploy();

  std::printf("== Ablation A1: EOP vs nominal node power (ARM SoC) ==\n");
  std::printf("characterized safe margins (guard %.1f%%):\n",
              config.guard_percent);
  for (const auto& point : margins.points) {
    std::printf("  f=%5.0f MHz: crash at -%.1f%%, safe VDD %.3f V "
                "(-%.1f%%)\n",
                point.freq.value, point.crash_offset_percent,
                point.safe_vdd.value, point.safe_offset_percent);
  }
  std::printf("safe refresh interval: %.2f s (%.0fx nominal)\n",
              margins.safe_refresh.value,
              margins.safe_refresh.value / 0.064);
  std::printf("predictor advice: mode %s, P(crash)=%.2e, eop %.3f V @ "
              "%.0f MHz\n\n",
              to_string(advice.mode), advice.predicted_crash_probability,
              advice.eop.vdd.value, advice.eop.freq.value);

  TextTable table("Per-workload power at nominal vs EOP (8 active cores)");
  table.set_header({"workload", "nominal [W]", "EOP [W]", "chip saving",
                    "memory saving", "energy EE"});
  double ee_sum = 0.0;
  const auto suite = stress::spec2006_profiles();
  for (const auto& w : suite) {
    const auto comparison = node.energy_comparison(w, 8);
    ee_sum += comparison.energy_efficiency_factor;
    table.add_row({w.name, TextTable::num(comparison.nominal_power.value, 1),
                   TextTable::num(comparison.eop_power.value, 1),
                   TextTable::pct(comparison.power_saving * 100.0),
                   TextTable::pct(comparison.memory_power_saving * 100.0),
                   TextTable::num(comparison.energy_efficiency_factor, 2) +
                       "x"});
  }
  table.print();
  std::printf("\nmean node EE factor from margins alone: %.2fx "
              "(Table 3 'margins' source: 1.5x)\n",
              ee_sum / static_cast<double>(suite.size()));

  // Low-power mode: let the Predictor drop to half frequency.
  core::UniServerConfig lp_config = config;
  lp_config.min_freq_ratio = 0.5;
  core::UniServerNode lp_node(lp_config, 3);
  lp_node.characterize();
  const auto lp_advice = lp_node.deploy();
  double lp_ee = 0.0;
  for (const auto& w : suite) {
    lp_ee += lp_node.energy_comparison(w, 8).energy_efficiency_factor;
  }
  std::printf("low-power mode (%s, %.0f MHz @ %.3f V): mean fixed-work EE "
              "%.2fx\n",
              to_string(lp_advice.mode), lp_advice.eop.freq.value,
              lp_advice.eop.vdd.value,
              lp_ee / static_cast<double>(suite.size()));
  return 0;
}
