// Reproduces Figure 1: "Each manufactured chip is intrinsically
// different in terms of capabilities".
//
// Samples a population of 1000 ARM Server-on-Chip parts from the
// variation model and histograms (a) each part's exploitable undervolt
// margin under a mid-stress workload and (b) the maximum frequency each
// part could sustain at nominal voltage — the "performance bins" the
// paper's figure sketches. Binning would sell all parts at the
// worst-bin point; UniServer exposes each part's own bin.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "hwmodel/chip.h"
#include "hwmodel/eop.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"
#include "telemetry/export.h"

using namespace uniserver;

int main() {
  const hw::ChipSpec spec = hw::arm_soc_spec();
  const hw::WorkloadSignature w = *stress::spec_profile("bzip2");
  constexpr int kPopulation = 1000;

  Histogram margin_hist(4.0, 24.0, 10);
  Histogram fmax_hist(1.00, 1.35, 10);
  Accumulator margins;
  Rng rng(2026);
  for (int i = 0; i < kPopulation; ++i) {
    hw::Chip chip(spec, rng.next());
    const double margin = hw::undervolt_percent(
        spec.vdd_nominal, chip.system_crash_voltage(w, spec.freq_nominal));
    margins.add(margin);
    margin_hist.add(margin);

    // Max frequency at nominal voltage: the overclock headroom that
    // consumes the slowest core's margin (1.5x gain slope above fnom).
    double fr = 1.0;
    while (fr < 1.35) {
      const Volt crash = chip.system_crash_voltage(w, spec.freq_nominal * fr);
      // Stop once less than 1% of voltage margin remains.
      if (crash.value >= spec.vdd_nominal.value * 0.99) break;
      fr += 0.005;
    }
    fmax_hist.add(fr);
  }

  std::printf(
      "== Figure 1: per-part capability spread (%d ARM SoC parts) ==\n\n",
      kPopulation);
  std::printf("Undervolt margin under bzip2 [%% below nominal VID]:\n%s\n",
              margin_hist.ascii(48).c_str());
  std::printf("Max frequency bin at nominal voltage [x nominal]:\n%s\n",
              fmax_hist.ascii(48).c_str());
  std::printf(
      "margin: mean %.1f%%, min %.1f%%, max %.1f%% -> worst-case binning "
      "wastes %.1f%% of voltage on the average part\n",
      margins.mean(), margins.min(), margins.max(),
      margins.mean() - margins.min());

  // Plot-ready series next to the ASCII rendering.
  std::vector<std::vector<double>> bins;
  for (std::size_t i = 0; i < margin_hist.bins(); ++i) {
    bins.push_back({margin_hist.bin_low(i), margin_hist.bin_high(i),
                    static_cast<double>(margin_hist.bin_count(i))});
  }
  telemetry::save_series_csv("fig1_margin_histogram.csv",
                             {"bin_low_pct", "bin_high_pct", "parts"}, bins);
  return 0;
}
