// Reproduces the §6.D edge-computing energy example:
//
//   "a hypothetical IoT service with a target end-to-end latency of
//    200 ms can easily, for a roundtrip to the cloud, expect to spend
//    half of its budget in the network [...] operating at 50% of the
//    peak frequency with 30% less voltage translates to running with
//    50% less energy and 75% less power."
#include <cstdio>

#include "common/table.h"
#include "edge/edge.h"

using namespace uniserver;

int main() {
  edge::LatencyModel latency;  // 200 ms target, 100 ms cloud RTT, 5 ms edge

  std::printf("== Edge latency budget (target %.0f ms) ==\n",
              latency.target_latency.millis());
  std::printf("cloud: RTT %.0f ms -> compute budget %.0f ms (%.0f%% of the "
              "budget burnt in the network)\n",
              latency.cloud_rtt.millis(),
              latency.compute_budget_cloud().millis(),
              latency.cloud_rtt.millis() /
                  latency.target_latency.millis() * 100.0);
  std::printf("edge:  RTT %.0f ms -> compute budget %.0f ms\n\n",
              latency.edge_rtt.millis(),
              latency.compute_budget_edge().millis());

  // The paper's quoted DVFS point.
  const edge::DvfsSavings quoted = edge::savings_at(0.5, 0.7);
  TextTable table("DVFS savings from the edge latency slack");
  table.set_header({"point", "freq", "voltage", "power saving",
                    "energy saving", "paper"});
  table.add_row({"paper example", "50%", "70%",
                 TextTable::pct(quoted.power_saving() * 100.0, 1),
                 TextTable::pct(quoted.energy_saving() * 100.0, 1),
                 "75% power, 50% energy"});

  const edge::VfCurve curve;
  const edge::DvfsSavings slack = edge::edge_savings(latency, curve);
  table.add_row({"slack-derived",
                 TextTable::pct(slack.freq_ratio * 100.0, 0),
                 TextTable::pct(slack.voltage_ratio * 100.0, 0),
                 TextTable::pct(slack.power_saving() * 100.0, 1),
                 TextTable::pct(slack.energy_saving() * 100.0, 1), ""});
  table.print();

  TextTable sweep("Power/energy savings across the V-f curve");
  sweep.set_header({"freq ratio", "voltage ratio", "power saving",
                    "energy saving"});
  for (double fr = 1.0; fr >= 0.29; fr -= 0.1) {
    const double vr = curve.voltage_ratio_for(fr);
    const edge::DvfsSavings savings = edge::savings_at(fr, vr);
    sweep.add_row({TextTable::num(fr, 1), TextTable::num(vr, 2),
                   TextTable::pct(savings.power_saving() * 100.0, 1),
                   TextTable::pct(savings.energy_saving() * 100.0, 1)});
  }
  sweep.print();
  return 0;
}
