// Failure-prediction quality (paper §5.B: techniques that "detect and
// predict future failures in real time" so workloads migrate before
// the crash).
//
// Evaluation protocol: a node develops progressive DRAM degradation at
// a known onset time and crashes when a decay hit lands in a critical
// structure. The log-based predictor watches the HealthLog stream;
// measured per threshold setting: lead time (alarm -> first fatal
// event), detection rate, and false alarms on healthy twin nodes.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/platform.h"
#include "hypervisor/hypervisor.h"
#include "openstack/failure_predictor.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

struct TrialOutcome {
  bool alarmed{false};
  bool fatal{false};
  double lead_time_s{0.0};      ///< alarm -> fatal (if both happened)
  bool false_alarm{false};      ///< alarm on the healthy twin
};

TrialOutcome run_trial(double evacuation_score, std::uint64_t seed) {
  hw::NodeSpec spec;
  spec.chip = hw::arm_soc_spec();
  hw::ServerNode sick(spec, seed);
  hw::ServerNode healthy(spec, seed + 1);

  hv::HvConfig config;
  config.use_reliable_domain = false;  // let degradation reach everything
  config.selective_protection = false;
  // Self-healing channel isolation would mute the degradation signal
  // the predictor is being scored on.
  config.channel_isolation_threshold_per_hour = 1e12;
  hv::Hypervisor sick_hv(sick, config, seed);
  hv::Hypervisor healthy_hv(healthy, config, seed + 1);

  for (hv::Hypervisor* hypervisor : {&sick_hv, &healthy_hv}) {
    hv::Vm vm;
    vm.id = 1;
    vm.vcpus = 4;
    vm.memory_mb = 8192.0;
    vm.workload = stress::ldbc_profile();
    hypervisor->create_vm(vm);
  }

  // The healthy twin is not pristine: it runs at a commissioned relaxed
  // refresh (the paper's 1.5 s point), so it emits the occasional benign
  // decay event — exactly the noise a threshold must not trip on.
  {
    hw::Eop eop = healthy.eop();
    eop.refresh = Seconds{1.5};
    healthy_hv.apply_eop(eop);
  }

  osk::LogFailurePredictor::Config predictor_config;
  predictor_config.evacuation_score = evacuation_score;
  osk::LogFailurePredictor predictor(predictor_config);
  sick_hv.healthlog().subscribe_errors(
      [&predictor](const daemons::ErrorEvent& event) {
        predictor.observe("sick", event);
      });
  healthy_hv.healthlog().subscribe_errors(
      [&predictor](const daemons::ErrorEvent& event) {
        predictor.observe("healthy", event);
      });

  TrialOutcome outcome;
  double alarm_time = -1.0;
  const double onset = 6.0 * 3600.0;  // degradation starts at hour 6
  for (int i = 0; i < 24 * 60; ++i) {
    const Seconds now{60.0 * i};
    // Progressive retention degradation on the sick node: the refresh
    // interval its cells can tolerate shrinks, modelled as the node's
    // effective interval stretching after the onset.
    if (now.value >= onset) {
      const double progress =
          (now.value - onset) / (18.0 * 3600.0);  // ramps over 18 h
      hw::Eop eop = sick.eop();
      eop.refresh = Seconds{0.064 + progress * 6.0};
      sick_hv.apply_eop(eop);
    }
    const hv::TickReport report = sick_hv.tick(now, 60_s);
    healthy_hv.tick(now, 60_s);

    if (alarm_time < 0.0 && predictor.should_evacuate("sick", now)) {
      alarm_time = now.value;
      outcome.alarmed = true;
    }
    if (predictor.should_evacuate("healthy", now)) {
      outcome.false_alarm = true;
    }
    if (report.hypervisor_fatal && !outcome.fatal) {
      outcome.fatal = true;
      if (alarm_time >= 0.0) {
        outcome.lead_time_s = now.value - alarm_time;
      }
      break;
    }
    for (hv::Hypervisor* hypervisor : {&sick_hv, &healthy_hv}) {
      if (!hypervisor->vms().contains(1)) {
        hv::Vm vm;
        vm.id = 1;
        vm.vcpus = 4;
        vm.memory_mb = 8192.0;
        vm.workload = stress::ldbc_profile();
        hypervisor->create_vm(vm);
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  TextTable table("Failure-prediction quality (20 trials per threshold)");
  table.set_header({"evacuation score", "alarms before fatal",
                    "mean lead time [h]", "false alarms (healthy twin)"});
  for (const double threshold : {30.0, 60.0, 120.0, 300.0}) {
    int alarmed_before_fatal = 0;
    int fatals = 0;
    int false_alarms = 0;
    Accumulator lead;
    for (std::uint64_t trial = 0; trial < 20; ++trial) {
      const TrialOutcome outcome =
          run_trial(threshold, 9000 + trial * 13);
      if (outcome.fatal) {
        ++fatals;
        if (outcome.alarmed && outcome.lead_time_s > 0.0) {
          ++alarmed_before_fatal;
          lead.add(outcome.lead_time_s / 3600.0);
        }
      } else if (outcome.alarmed) {
        // Alarm fired and evacuation would have saved everything.
        ++alarmed_before_fatal;
      }
      if (outcome.false_alarm) ++false_alarms;
    }
    table.add_row({TextTable::num(threshold, 0),
                   std::to_string(alarmed_before_fatal) + "/20",
                   lead.count() > 0 ? TextTable::num(lead.mean(), 1) : "-",
                   std::to_string(false_alarms) + "/20"});
  }
  table.print();
  std::printf(
      "\nexpected shape: an ROC trade-off — low thresholds buy hours of "
      "lead time but trip on the healthy twin's benign decay events; "
      "high thresholds never cry wolf but alarm later (6.2 h -> 4.1 h). "
      "In this background-noise regime the knee sits near 120; the "
      "threshold must be set against the fleet's commissioned noise "
      "floor.\n");
  return 0;
}
