# Canonical list of bench harnesses. Single source of truth: the bench
# build iterates it, and test_bench_invariants checks it against the
# bench_*.cpp files on disk — adding a bench without registering it
# here (or vice versa) fails the test suite.
set(UNISERVER_BENCHES
  bench_table1_guardbands
  bench_table2_cpu_margins
  bench_table3_tco
  bench_fig1_binning
  bench_fig2_stack_smoke
  bench_fig3_hv_footprint
  bench_fig4_fault_injection
  bench_dram_refresh
  bench_edge_energy
  bench_ablation_eop_energy
  bench_ablation_domains
  bench_ablation_policies
  bench_ablation_virus
  bench_micro_primitives
  bench_ablation_aging
  bench_ablation_ecc
  bench_pdn_droop
  bench_tco_exploration
  bench_prediction_quality
  bench_raidr_binning
  bench_ablation_governor
  bench_ablation_checkpoint
  bench_ablation_environment
  bench_ablation_strong_cores
  bench_ablation_rackpower
  bench_diurnal_governor
  bench_parallel_scaling
  bench_scheduler_scale
  bench_migration_storm
  bench_request_tail
)
