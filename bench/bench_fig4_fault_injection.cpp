// Reproduces Figure 4: "Hypervisor fatal failures in case of errors in
// different structures".
//
// Campaign design (paper §6.C): one SDC into each of the 16,820
// statically allocated hypervisor objects, 5 independent executions per
// object, once with active VMs and once unloaded. Expected shape:
// fs/kernel tower near 3000+ fatal runs under load, mm follows, init
// and vdso barely register, and the unloaded campaign shows an order of
// magnitude fewer failures with the same category ranking.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "hypervisor/fault_injection.h"
#include "hypervisor/objects.h"

using namespace uniserver;

int main() {
  hv::ObjectInventory inventory(99);
  hv::FaultInjector injector(inventory);

  Rng rng_loaded(11);
  Rng rng_unloaded(12);
  const hv::CampaignResult loaded =
      injector.run_campaign({.runs_per_object = 5, .workload_loaded = true},
                            rng_loaded);
  const hv::CampaignResult unloaded =
      injector.run_campaign({.runs_per_object = 5, .workload_loaded = false},
                            rng_unloaded);

  TextTable table("Figure 4: hypervisor fatal failures per object category");
  table.set_header({"category", "objects", "crucial", "failures (loaded)",
                    "failures (unloaded)", "ratio"});
  for (hv::ObjectCategory category : hv::kAllCategories) {
    const auto with = loaded.fatal_by_category.at(category);
    const auto without = unloaded.fatal_by_category.at(category);
    table.add_row({to_string(category),
                   std::to_string(inventory.profile(category).object_count),
                   std::to_string(inventory.crucial_count(category)),
                   std::to_string(with), std::to_string(without),
                   without == 0 ? "-"
                                : TextTable::num(static_cast<double>(with) /
                                                     static_cast<double>(without),
                                                 1) + "x"});
  }
  table.print();

  std::printf(
      "\ntotal: %llu injections (%zu objects x 5 runs), %llu fatal loaded "
      "vs %llu unloaded (%.1fx)\n",
      static_cast<unsigned long long>(loaded.total_injections),
      inventory.size(),
      static_cast<unsigned long long>(loaded.total_fatal),
      static_cast<unsigned long long>(unloaded.total_fatal),
      static_cast<double>(loaded.total_fatal) /
          static_cast<double>(unloaded.total_fatal));
  std::printf(
      "objects marked crucial by the loaded campaign: %zu "
      "(selective-protection target set)\n",
      loaded.objects_marked_crucial());
  std::printf("paper: same fault-injection rate -> ~10x more crashes with "
              "active VMs; fs/kernel/mm cluster as sensitive\n");
  return 0;
}
