// Reproduces Table 1: "Sources of variations and voltage guard-bands".
//
// The paper's Table 1 quotes the industry guard-band budget: voltage
// droops ~20%, Vmin ~15%, core-to-core variations ~5%. This harness
// derives the equivalent decomposition from the variation model, for a
// population of parts of each preset:
//   - droop component: crash-margin difference between a calm workload
//     and the worst-case virus on the same part,
//   - Vmin/process component: the calm-workload margin of the median
//     part (what a worst-case-designed Vmin guard-band must absorb),
//   - core-to-core component: in-chip spread of per-core margins.
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "hwmodel/chip.h"
#include "hwmodel/eop.h"
#include "hwmodel/chip_spec.h"
#include "stress/kernels.h"

using namespace uniserver;

namespace {

struct Decomposition {
  double droop_pct{0.0};
  double vmin_pct{0.0};
  double c2c_pct{0.0};
  double total_pct{0.0};
};

Decomposition decompose(const hw::ChipSpec& spec, int population,
                        std::uint64_t seed) {
  hw::WorkloadSignature calm;
  calm.name = "calm";
  calm.activity = 0.2;
  calm.didt_stress = 0.05;
  const hw::WorkloadSignature virus =
      stress::kernel_for(stress::StressTarget::kVoltageDroop).signature;

  Accumulator droop;
  Accumulator vmin;
  Accumulator c2c;
  Accumulator total;
  Rng rng(seed);
  for (int i = 0; i < population; ++i) {
    hw::Chip chip(spec, rng.next());
    const MegaHertz f = spec.freq_nominal;
    const double calm_margin =
        hw::undervolt_percent(spec.vdd_nominal,
                              chip.system_crash_voltage(calm, f));
    const double virus_margin =
        hw::undervolt_percent(spec.vdd_nominal,
                              chip.system_crash_voltage(virus, f));
    droop.add(calm_margin - virus_margin);
    vmin.add(virus_margin);
    c2c.add(chip.core_to_core_variation_percent(calm, f));
    total.add(calm_margin);
  }
  return {droop.mean(), vmin.mean(), c2c.mean(), total.mean()};
}

}  // namespace

int main() {
  TextTable table("Table 1: Sources of variations and voltage guard-bands");
  table.set_header({"reason for guard-band", "paper (industry)",
                    "i7-3970X model", "ARM SoC model"});

  const Decomposition i7 = decompose(hw::i7_3970x_spec(), 200, 1);
  const Decomposition arm = decompose(hw::arm_soc_spec(), 200, 2);

  table.add_row({"voltage droops", "~20%", TextTable::pct(i7.droop_pct),
                 TextTable::pct(arm.droop_pct)});
  table.add_row({"Vmin (process, worst-case part)", "~15%",
                 TextTable::pct(i7.vmin_pct), TextTable::pct(arm.vmin_pct)});
  table.add_row({"core-to-core variations", "~5%",
                 TextTable::pct(i7.c2c_pct), TextTable::pct(arm.c2c_pct)});
  table.add_row({"total exploitable margin (calm workload)", ">30% (28nm ARM)",
                 TextTable::pct(i7.total_pct),
                 TextTable::pct(arm.total_pct)});
  table.print();
  return 0;
}
