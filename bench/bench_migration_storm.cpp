// Evacuation-storm throughput for the async migration control plane.
//
// Runs a storm-heavy fuzz campaign (64-node fleet, 8 racks, rack
// power-loss and mass-EOP-retreat events mixed into the arrival
// stream) through the full stack: every storm drains nodes through the
// migration orchestrator's per-link bandwidth queues, with the oracle
// battery checking conservation and energy closure after every DES
// step.
//
// Two properties are asserted on every build flavor:
//   oracles_green  no case tripped any invariant oracle;
//   identical      the campaign digest is bit-identical for --jobs 1
//                  and the requested worker count (the PR-2 contract).
//
// Emits BENCH_migration.json (migrations/s, completion/cancel/post-copy
// counts, copy traffic, mean downtime) for the perfsmoke gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "common/table.h"
#include "fuzz/harness.h"

using namespace uniserver;

namespace {

constexpr std::uint64_t kCampaignSeed = 20260809;

struct Options {
  int nodes{64};
  int cases{16};
  int events{96};
  unsigned jobs{4};
  std::string out{"BENCH_migration.json"};
  bool smoke{false};
};

struct StormRun {
  fuzz::CampaignResult campaign;
  double wall_s{0.0};
};

fuzz::CampaignConfig campaign_config(const Options& options) {
  fuzz::CampaignConfig config;
  config.seed = kCampaignSeed;
  config.cases = options.cases;
  config.scenario.nodes = options.nodes;
  config.scenario.events = options.events;
  config.scenario.horizon = Seconds{7200.0};
  // Two thirds arrivals fill the racks; a quarter of the event mass is
  // evacuation storms so the link queues actually contend.
  config.scenario.arrival_share = 0.65;
  config.scenario.storm_share = 0.25;
  return config;
}

StormRun run_storm(const Options& options, unsigned jobs) {
  par::set_default_jobs(jobs);
  StormRun run;
  const auto start = std::chrono::steady_clock::now();
  run.campaign = fuzz::run_campaign(campaign_config(options));
  run.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  par::set_default_jobs(0);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      options.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      options.cases = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      options.events = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    }
  }
  if (options.smoke) {
    options.nodes = 64;
    options.cases = 6;
    options.events = 96;
  }
  if (options.jobs == 0 || options.jobs == 1) options.jobs = 4;

  std::printf("storm campaign: %d cases, %d nodes, %d events each\n",
              options.cases, options.nodes, options.events);

  // Determinism first: the whole campaign, serial vs parallel.
  const StormRun serial = run_storm(options, 1);
  const StormRun parallel = run_storm(options, options.jobs);
  const bool identical =
      serial.campaign.digest == parallel.campaign.digest;
  const bool oracles_green = parallel.campaign.violated_cases == 0 &&
                             serial.campaign.violated_cases == 0;

  std::uint64_t migrations = 0, started = 0, cancelled = 0, postcopy = 0;
  double transferred_mb = 0.0, downtime_s = 0.0;
  for (const fuzz::CaseResult& result : parallel.campaign.cases) {
    const osk::CloudStats& s = result.outcome.cloud_stats;
    migrations += s.migrations;
    started += s.migrations_started;
    cancelled += s.migrations_cancelled;
    postcopy += s.postcopy_migrations;
    transferred_mb += s.migration_transferred_mb;
    downtime_s += s.migration_downtime_s;
  }
  const double migrations_per_s =
      parallel.wall_s > 0.0
          ? static_cast<double>(migrations) / parallel.wall_s
          : 0.0;
  const double mean_downtime_ms =
      migrations > 0
          ? downtime_s * 1000.0 / static_cast<double>(migrations)
          : 0.0;

  TextTable table("Evacuation storm, " + std::to_string(options.nodes) +
                  " nodes / " + std::to_string(options.cases) + " cases");
  table.set_header({"metric", "value"});
  table.add_row({"migrations completed", std::to_string(migrations)});
  table.add_row({"migrations started", std::to_string(started)});
  table.add_row({"cancelled in flight", std::to_string(cancelled)});
  table.add_row({"post-copy fallbacks", std::to_string(postcopy)});
  table.add_row({"copy traffic [MB]", TextTable::num(transferred_mb, 0)});
  table.add_row({"mean downtime [ms]", TextTable::num(mean_downtime_ms, 2)});
  table.add_row({"campaign wall [s]", TextTable::num(parallel.wall_s, 2)});
  table.add_row({"migrations/s", TextTable::num(migrations_per_s, 1)});
  table.add_row({"oracles", oracles_green ? "green" : "VIOLATED"});
  table.add_row({"jobs 1 vs " + std::to_string(options.jobs) + " digest",
                 identical ? "identical" : "DIVERGED"});
  table.print();

  std::FILE* json = std::fopen(options.out.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"migration_storm\",\n"
                 "  \"nodes\": %d,\n"
                 "  \"cases\": %d,\n"
                 "  \"events\": %d,\n"
                 "  \"smoke\": %s,\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"migrations\": %llu,\n"
                 "  \"migrations_per_s\": %.1f,\n"
                 "  \"migrations_started\": %llu,\n"
                 "  \"migrations_cancelled\": %llu,\n"
                 "  \"postcopy_fallbacks\": %llu,\n"
                 "  \"transferred_mb\": %.1f,\n"
                 "  \"mean_downtime_ms\": %.3f,\n"
                 "  \"oracles_green\": %s,\n"
                 "  \"identical\": %s\n"
                 "}\n",
                 options.nodes, options.cases, options.events,
                 options.smoke ? "true" : "false", parallel.wall_s,
                 static_cast<unsigned long long>(migrations),
                 migrations_per_s,
                 static_cast<unsigned long long>(started),
                 static_cast<unsigned long long>(cancelled),
                 static_cast<unsigned long long>(postcopy),
                 transferred_mb, mean_downtime_ms,
                 oracles_green ? "true" : "false",
                 identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", options.out.c_str());
  }

  if (!oracles_green) {
    std::printf("\nFAIL: invariant oracle violated during the storm\n");
    return 1;
  }
  if (!identical) {
    std::printf("\nFAIL: campaign digest diverged across --jobs\n");
    return 1;
  }
  std::printf("\n%llu migrations completed, oracles green, digest "
              "jobs-invariant\n",
              static_cast<unsigned long long>(migrations));
  return 0;
}
