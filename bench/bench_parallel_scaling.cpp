// Parallel campaign engine scaling: the shmoo-surface grid and the
// hypervisor fault campaign at --jobs 1/2/4, verifying the engine's
// two promises at once — bit-identical outputs for every worker count
// (common/parallel.h fork-per-item seeding) and wall-clock speedup on
// multi-core hosts. Run with `--jobs N` to add a custom point.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "hwmodel/chip.h"
#include "hwmodel/chip_spec.h"
#include "hypervisor/fault_injection.h"
#include "stress/profiles.h"
#include "stress/shmoo.h"
#include "stress/shmoo_surface.h"

using namespace uniserver;

namespace {

struct CampaignOutputs {
  std::vector<stress::ShmooCell> surface_cells;
  std::vector<double> crash_means;
  std::vector<std::uint8_t> fatal_runs;
  double wall_ms{0.0};
};

// One fixed workload mix, heavy enough that a cell/object is real work.
CampaignOutputs run_all(unsigned jobs) {
  par::set_default_jobs(jobs);
  CampaignOutputs out;
  const auto start = std::chrono::steady_clock::now();

  // Dense V-F surface: 113 offsets x 12 frequency ratios.
  hw::Chip chip(hw::arm_soc_spec(), 42);
  stress::SurfaceConfig config;
  config.offset_step = 0.25;
  config.freq_ratios = {0.5,  0.55, 0.6,  0.65, 0.7,  0.75,
                        0.8,  0.85, 0.9,  0.95, 1.0,  1.05};
  Rng surface_rng(7);
  const auto surface = stress::characterize_surface(
      chip, *stress::spec_profile("h264ref"), config, surface_rng);
  out.surface_cells = surface.cells;

  // Full per-core x per-workload characterization campaign.
  stress::ShmooCharacterizer characterizer({.runs = 3});
  Rng campaign_rng(11);
  const auto campaign = characterizer.campaign(
      chip, stress::spec2006_profiles(), chip.spec().freq_nominal,
      campaign_rng);
  for (const auto& summary : campaign) {
    for (const auto& core : summary.per_core) {
      out.crash_means.push_back(core.crash_offset_mean);
    }
  }

  // Per-object SDC injection campaign (16,820 objects x 5 runs).
  hv::ObjectInventory inventory(99);
  hv::FaultInjector injector(inventory);
  Rng fault_rng(13);
  const auto fault = injector.run_campaign(
      {.runs_per_object = 5, .workload_loaded = true}, fault_rng);
  out.fatal_runs = fault.fatal_runs_per_object;

  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

bool identical(const CampaignOutputs& a, const CampaignOutputs& b) {
  return a.surface_cells == b.surface_cells &&
         a.crash_means == b.crash_means && a.fatal_runs == b.fatal_runs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> jobs{1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs.push_back(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    }
  }

  std::printf("hardware threads: %u\n\n", par::hardware_jobs());
  TextTable table("Campaign engine scaling (surface + shmoo + faults)");
  table.set_header({"jobs", "wall [ms]", "speedup vs 1", "bit-identical"});

  run_all(1);  // warm-up: pay lazy model/profile init outside the timings

  CampaignOutputs baseline;
  bool all_identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Best of three repetitions: single-run wall times at this scale
    // are dominated by scheduler noise.
    CampaignOutputs run = run_all(jobs[i]);
    for (int rep = 0; rep < 2; ++rep) {
      CampaignOutputs again = run_all(jobs[i]);
      if (again.wall_ms < run.wall_ms) run = std::move(again);
    }
    const bool same = i == 0 || identical(baseline, run);
    all_identical = all_identical && same;
    table.add_row({std::to_string(jobs[i]), TextTable::num(run.wall_ms, 1),
                   i == 0 ? "1.00x"
                          : TextTable::num(baseline.wall_ms / run.wall_ms, 2) +
                                "x",
                   i == 0 ? "(baseline)" : same ? "yes" : "NO"});
    if (i == 0) baseline = run;
  }
  table.print();
  par::set_default_jobs(0);  // back to the hardware default

  if (!all_identical) {
    std::printf("\nFAIL: outputs diverged across worker counts\n");
    return 1;
  }
  std::printf("\nall worker counts produced bit-identical campaign "
              "outputs; speedup tracks physical cores\n");
  return 0;
}
