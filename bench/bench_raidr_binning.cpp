// Extension bench: retention-aware refresh binning (RAIDR [26], the
// paper's reference for refresh-power numbers) vs uniform relaxation.
//
// Uniform relaxation rides the BER curve: power savings come with weak
// cells exposed. Two-bin RAIDR profiling pins the weak tail at the
// nominal interval and relaxes everything else — the frontier below
// shows it harvesting essentially the whole refresh-power saving at the
// nominal error level.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "hwmodel/dram_model.h"
#include "hwmodel/raidr.h"
#include "telemetry/export.h"

using namespace uniserver;
using namespace uniserver::literals;

int main() {
  hw::DimmSpec spec;
  spec.dimm_scale_sigma = 0.0;  // population-average part
  const hw::DimmModel dimm(spec, 1);
  const hw::RaidrBinning binning(dimm, hw::RaidrConfig{});
  const Celsius temp{30.0};

  TextTable table(
      "Uniform relaxation vs RAIDR two-bin refresh (8 GB DIMM, 30 C)");
  table.set_header({"long interval", "uniform: weak cells", "uniform: saving",
                    "RAIDR: fast-bin rows", "RAIDR: weak cells",
                    "RAIDR: saving"});
  for (const Seconds interval : {256_ms, 1_s, 1500_ms, 3_s, 5_s, 10_s}) {
    const double uniform_errors = dimm.expected_errors(interval, temp);
    const double uniform_saving = dimm.power_saving_fraction(interval);
    const hw::RaidrResult raidr = binning.evaluate(interval, temp);
    table.add_row(
        {interval.value >= 1.0 ? TextTable::num(interval.value, 1) + " s"
                               : TextTable::num(interval.millis(), 0) + " ms",
         TextTable::num(uniform_errors, 3),
         TextTable::pct(uniform_saving * 100.0),
         TextTable::num(raidr.weak_row_fraction * 100.0, 5) + "%",
         TextTable::num(raidr.expected_errors, 6),
         TextTable::pct(raidr.dimm_power_saving * 100.0)});
  }
  table.print();

  // Plot-ready frontier: uniform vs RAIDR saving at each interval.
  std::vector<std::vector<double>> frontier;
  for (const Seconds interval : {256_ms, 1_s, 1500_ms, 3_s, 5_s, 10_s}) {
    const hw::RaidrResult raidr = binning.evaluate(interval, temp);
    frontier.push_back({interval.value,
                        dimm.expected_errors(interval, temp),
                        dimm.power_saving_fraction(interval),
                        raidr.weak_row_fraction, raidr.expected_errors,
                        raidr.dimm_power_saving});
  }
  telemetry::save_series_csv(
      "raidr_frontier.csv",
      {"interval_s", "uniform_errors", "uniform_saving", "raidr_weak_rows",
       "raidr_errors", "raidr_saving"},
      frontier);

  const auto at_ten = binning.evaluate(10_s, temp);
  std::printf(
      "\nat a 10 s long bin only %.4f%% of rows need nominal refresh: "
      "%.1f%% of DIMM power saved (the full refresh share is %.1f%%) with "
      "the error rate still at the nominal level — refresh binning turns "
      "the paper's margin into pure savings. At future 32 Gb densities "
      "the same binning would save up to %.0f%% of DRAM power.\n",
      at_ten.weak_row_fraction * 100.0, at_ten.dimm_power_saving * 100.0,
      dimm.refresh_power_fraction_nominal() * 100.0,
      hw::refresh_power_fraction_for_density(32.0) * 100.0);
  return 0;
}
