// Reproduces the DRAM characterization of §6.B:
//   - random-pattern tests on an 8 GB DDR3 DIMM while relaxing the
//     refresh interval from the nominal 64 ms: no errors up to 1.5 s;
//   - at 5 s (78x nominal) the cumulative BER is ~1e-9, within
//     commercial DRAM targets and far below ECC-SECDED's ~1e-6;
//   - refresh power: ~9% of DIMM power at 2 Gb density, >34% at 32 Gb
//     (RAIDR projection), and what relaxation saves.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "ecc/scrubber.h"
#include "hwmodel/dram_model.h"
#include "telemetry/export.h"

using namespace uniserver;
using namespace uniserver::literals;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      par::set_default_jobs(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    }
  }
  hw::DimmSpec spec;  // 8 GB DDR3
  hw::DimmModel dimm(spec, 7);
  Rng rng(7);
  const Celsius room{28.0};  // air-conditioned server room

  TextTable sweep("DRAM refresh-interval sweep (8 GB DDR3, ECC off, 28 C)");
  sweep.set_header({"refresh interval", "x nominal", "errors (3 passes)",
                    "cumulative BER", "refresh power saved"});
  const double nominal_ms = spec.nominal_refresh.millis();
  const std::vector<Seconds> intervals{
      64_ms,   128_ms,  256_ms,  512_ms, 1000_ms,
      1500_ms, 2000_ms, 3000_ms, Seconds{5.0}};
  // One stream per interval: the sweep fans out across the pool and
  // stays bit-identical for any --jobs value.
  std::vector<Rng> streams = par::fork_streams(rng, intervals.size());
  const std::vector<std::uint64_t> errors_per_interval =
      par::parallel_map<std::uint64_t>(intervals.size(), [&](std::size_t i) {
        std::uint64_t errors = 0;
        for (int pass = 0; pass < 3; ++pass) {
          errors += dimm.sample_errors(intervals[i], room, streams[i]);
        }
        return errors;
      });
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const Seconds interval = intervals[i];
    const double ber = dimm.bit_error_probability(interval, room);
    sweep.add_row(
        {interval.value >= 1.0 ? TextTable::num(interval.value, 1) + " s"
                               : TextTable::num(interval.millis(), 0) + " ms",
         TextTable::num(interval.millis() / nominal_ms, 0) + "x",
         std::to_string(errors_per_interval[i]),
         ber < 1e-15 ? "~0" : TextTable::num(ber * 1e9, 2) + "e-9",
         TextTable::pct(dimm.power_saving_fraction(interval) * 100.0)});
  }
  sweep.print();

  // Plot-ready BER curve (deterministic, so plain indexed map).
  {
    std::vector<double> ts;
    for (double t = 0.064; t <= 10.0; t *= 1.25) ts.push_back(t);
    const auto curve = par::parallel_map<std::vector<double>>(
        ts.size(), [&](std::size_t i) {
          return std::vector<double>{
              ts[i], dimm.bit_error_probability(Seconds{ts[i]}, room)};
        });
    telemetry::save_series_csv("dram_ber_curve.csv", {"refresh_s", "ber"},
                               curve);
    std::printf("\n");
  }

  std::printf(
      "\npaper: no errors up to 1.5 s; BER ~1e-9 at 5 s (78x nominal); "
      "ECC-SECDED handles up to 1e-6 [27]\n\n");

  TextTable power("Refresh share of DRAM power vs density (RAIDR [26])");
  power.set_header({"density", "refresh power share", "paper"});
  for (const double density : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double fraction = hw::refresh_power_fraction_for_density(density);
    std::string paper = density == 2.0 ? "9%" : density == 32.0 ? ">34%" : "";
    power.add_row({TextTable::num(density, 0) + " Gb",
                   TextTable::pct(fraction * 100.0), paper});
  }
  power.print();

  // ECC-SECDED absorbing a relaxed-refresh error rate: the scrubber
  // model at a raw BER of 1e-6 per pass.
  ecc::ScrubConfig scrub;
  scrub.words = 1u << 20;  // 8 MiB protected region
  scrub.scrub_interval = Seconds{5.0};
  scrub.bit_flip_rate_per_s = 1e-6 / 5.0;  // 1e-6 per bit per pass
  std::printf(
      "\nECC-SECDED at raw BER 1e-6 per scrub pass: P(word uncorrectable) "
      "= %.2e (expected %.4f words lost per pass over %llu words)\n",
      ecc::word_uncorrectable_probability(scrub),
      ecc::word_uncorrectable_probability(scrub) *
          static_cast<double>(scrub.words),
      static_cast<unsigned long long>(scrub.words));
  return 0;
}
