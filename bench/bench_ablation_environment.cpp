// Ablation A9: environmental conditions vs characterized margins
// (paper §4.A: operating points "may dynamically change depending on
// the workload, variations of environmental conditions, chip aging
// etc."; §6.B's DRAM margins were measured "in an air-conditioned
// server room").
//
// An edge micro-server is characterized under machine-room assumptions
// (30 C DRAM worst case, cool junction), then deployed into closets at
// 25 / 35 / 45 C ambient. Hot silicon is slower (thermal derating eats
// the voltage margin) and hot DRAM cells leak faster (the safe refresh
// stops being safe). Re-characterizing *in situ* with honest worst-case
// parameters restores clean operation at a slightly shallower EOP.
#include <cstdio>

#include "common/table.h"
#include "core/uniserver_node.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

struct Outcome {
  double undervolt{0.0};
  double refresh_s{0.064};
  std::uint64_t crashes{0};
  std::uint64_t dram_errors{0};
};

Outcome run_day(Celsius ambient, bool honest_recharacterization,
                std::uint64_t seed) {
  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.node_spec.ambient = ambient;
  config.node_spec.chip.power.ambient = ambient;
  config.shmoo.runs = 1;
  config.predictor_epochs = 10;
  // Machine-room characterization assumes a 30 C DRAM worst case (the
  // paper's air-conditioned room); the honest variant uses the actual
  // closet temperature plus headroom. Auto-recharacterization inherits
  // the same assumption either way.
  config.dram_worst_case_temp = honest_recharacterization
                                    ? Celsius{ambient.value + 10.0}
                                    : Celsius{30.0};
  // Channel isolation would mask the effect being measured here (it is
  // ablated separately in A8).
  config.hv.channel_isolation_threshold_per_hour = 1e12;
  core::UniServerNode node(config, seed);

  node.characterize();
  node.deploy();

  hv::Vm vm;
  vm.id = 1;
  vm.vcpus = 8;
  vm.memory_mb = 8192.0;
  vm.workload = *stress::spec_profile("h264ref");  // hot, noisy guest
  node.hypervisor().create_vm(vm);

  Outcome outcome;
  outcome.undervolt = hw::undervolt_percent(
      config.node_spec.chip.vdd_nominal, node.server().eop().vdd);
  outcome.refresh_s = node.server().eop().refresh.value;
  for (int i = 0; i < 24 * 60; ++i) {
    const hv::TickReport report = node.step(60_s);
    outcome.dram_errors += report.dram_errors_relaxed;
    if (report.node_crash) ++outcome.crashes;
    if (!node.hypervisor().vms().contains(1)) {
      node.hypervisor().create_vm(vm);
    }
  }
  return outcome;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A9: machine-room margins vs in-situ re-characterization "
      "(24 h, hot guest)");
  table.set_header({"ambient", "characterization", "undervolt", "refresh",
                    "DRAM errors", "node crashes"});
  std::uint64_t seed = 6100;
  for (const double ambient : {25.0, 35.0, 45.0}) {
    for (const bool honest : {false, true}) {
      const Outcome outcome = run_day(Celsius{ambient}, honest, seed);
      table.add_row({TextTable::num(ambient, 0) + " C",
                     honest ? "in-situ" : "machine-room",
                     TextTable::pct(outcome.undervolt, 1),
                     TextTable::num(outcome.refresh_s, 2) + " s",
                     std::to_string(outcome.dram_errors),
                     std::to_string(outcome.crashes)});
    }
    seed += 7;
  }
  table.print();
  std::printf(
      "\nexpected shape: at 25-35 C the machine-room margins hold; in a "
      "45 C closet the DRAM pours decay errors through a refresh interval "
      "qualified for 30 C, while honest in-situ characterization picks a "
      "shorter refresh and stays clean. This is why the StressLog is an "
      "on-node daemon rather than a factory step.\n");
  return 0;
}
