// Extension bench: the governor over a diurnal day/night cycle.
//
// Edge boxes serve humans, so demand is diurnal; the paper's low-power
// execution mode only pays if something actually switches into it at
// night. A node serves a 48 h diurnal utilization trace under three
// policies: nominal (no UniServer), high-performance-only EOP
// (undervolt, never downclock), and the mode-switching governor
// (undervolt + low-power nights). Energy and served load are reported.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/table.h"
#include "core/governor.h"
#include "core/uniserver_node.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"
#include "trace/diurnal.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

/// Utilization of the node over the day (people sleep).
double utilization_at(Seconds t) {
  trace::DiurnalConfig shape;
  shape.peak_factor = 0.95;
  shape.trough_factor = 0.12;
  return trace::diurnal_factor(shape, t);
}

struct Outcome {
  double energy_kwh{0.0};
  double mean_undervolt{0.0};
  std::uint64_t crashes{0};
  int low_power_ticks{0};
};

enum class Policy { kNominal, kHighPerformanceEop, kGovernor };

Outcome run_two_days(Policy policy, std::uint64_t seed) {
  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.shmoo.runs = 1;
  config.predictor_epochs = 10;
  core::UniServerNode node(config, seed);
  if (policy != Policy::kNominal) {
    node.characterize();
    node.deploy();
  }

  core::GovernorConfig governor_config;
  governor_config.hysteresis_ticks = 3;
  core::EopGovernor governor(governor_config);

  hv::Vm vm;
  vm.id = 1;
  vm.vcpus = 8;
  vm.memory_mb = 4096.0;
  vm.workload = stress::web_service_profile();
  node.hypervisor().create_vm(vm);

  Outcome outcome;
  double undervolt_sum = 0.0;
  int ticks = 0;
  const Seconds tick{300.0};
  for (double t = 0.0; t < 48.0 * 3600.0; t += tick.value) {
    const double utilization = utilization_at(Seconds{t});
    // The guest's activity follows demand.
    hv::Vm current = vm;
    current.workload.activity =
        stress::web_service_profile().activity * utilization / 0.5;
    node.hypervisor().destroy_vm(1);
    node.hypervisor().create_vm(current);

    if (policy == Policy::kGovernor) {
      const hw::Eop eop = governor.decide(
          node.margins(), node.predictor(), node.server().chip(),
          node.hypervisor().aggregate_signature(), utilization,
          node.margins().current().safe_refresh);
      node.hypervisor().apply_eop(eop);
      if (governor.mode() == daemons::ExecutionMode::kLowPower) {
        ++outcome.low_power_ticks;
      }
    }

    const hv::TickReport report = node.step(tick);
    outcome.energy_kwh += report.energy.kwh();
    undervolt_sum += hw::undervolt_percent(
        config.node_spec.chip.vdd_nominal, node.server().eop().vdd);
    ++ticks;
    if (report.node_crash) ++outcome.crashes;
    if (!node.hypervisor().vms().contains(1)) {
      node.hypervisor().create_vm(current);
    }
  }
  outcome.mean_undervolt = undervolt_sum / ticks;
  return outcome;
}

}  // namespace

int main() {
  TextTable table("Governor over a diurnal cycle (48 h, web service)");
  table.set_header({"policy", "mean undervolt", "low-power ticks",
                    "energy [kWh]", "crashes"});
  const Outcome nominal = run_two_days(Policy::kNominal, 33);
  const Outcome hp = run_two_days(Policy::kHighPerformanceEop, 33);
  const Outcome governor = run_two_days(Policy::kGovernor, 33);
  auto emit = [&table](const char* name, const Outcome& outcome) {
    table.add_row({name, TextTable::pct(outcome.mean_undervolt, 1),
                   std::to_string(outcome.low_power_ticks),
                   TextTable::num(outcome.energy_kwh, 3),
                   std::to_string(outcome.crashes)});
  };
  emit("nominal (conservative)", nominal);
  emit("EOP high-performance only", hp);
  emit("EOP + mode governor", governor);
  table.print();

  std::printf(
      "\nEE factors vs nominal: undervolt-only %.2fx, + night low-power "
      "mode %.2fx — the governor rides the demand curve down at night "
      "(paper SS3.E: the Predictor advises 'high-performance or "
      "low-power' modes; SS6.D: edge slack converts to V-f reduction).\n",
      nominal.energy_kwh / hp.energy_kwh,
      nominal.energy_kwh / governor.energy_kwh);
  return 0;
}
