// Energy-vs-tail-latency Pareto frontier across EOP aggressiveness.
//
// Everything below the serving layer trades guardband reclamation
// against crash rate; this bench measures what the *users* pay. The
// same diurnal VM workload runs on the full stack (commissioned fleet
// + cloud + request serving layer) at several guard-band levels, with
// VM checkpointing on so survivable SDCs turn into checkpoint-restore
// dispatch stalls. Shaving guard digs deeper into the voltage margin:
// fleet energy falls monotonically while SDC hits and restores fatten
// the request latency tail — the energy-vs-p99 Pareto frontier the
// paper's ecosystem argument implies but never plots.
//
// Asserted on every build flavor (exit 1 on violation):
//   pareto_monotone  energy strictly decreases and p99 never improves
//                    materially (1% jitter allowance: two fault-free
//                    levels differ only by placement noise) as the
//                    guard band shrinks, and the most aggressive level
//                    has a much fatter tail than the most conservative
//                    one;
//   books            the serving-layer conservation equations hold at
//                    the end of every level's run;
//   identical        the sweep digest is bit-identical for --jobs 1
//                    and the requested worker count (PR-2 contract).
//
// Emits BENCH_request.json (requests/s throughput plus the per-level
// frontier) for the perfsmoke gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/table.h"
#include "core/ecosystem.h"
#include "fuzz/oracles.h"
#include "serve/serve.h"
#include "trace/arrivals.h"

using namespace uniserver;

namespace {

constexpr std::uint64_t kStackSeed = 20260809;
constexpr std::uint64_t kTraceSeed = 0x7A11E57ULL;

/// Guard-band sweep, most conservative first. Guard applies on top of
/// the characterized *suite-worst* crash point, and the deployed VMs
/// run lighter workloads that crash ~15 mV below that — so with the
/// ~3 mV SDC rolloff the rate only becomes visible once the guard
/// shrinks well under 1%. The ladder spans "no faults" to "restores
/// visibly fatten the tail".
const std::vector<double> kGuards{8.0, 0.4, 0.1};

struct Options {
  int nodes{12};
  double hours{8.0};
  unsigned jobs{4};
  std::string out{"BENCH_request.json"};
  bool smoke{false};
};

struct LevelResult {
  double guard{0.0};
  double energy_kwh{0.0};
  double p50_ms{0.0};
  double p99_ms{0.0};
  double p999_ms{0.0};
  serve::ServeStats stats{};
  std::size_t outstanding{0};
  bool books{false};
};

// FNV-1a over the deterministic per-level outcome.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a_u64(h, bits);
}

std::uint64_t digest_level(std::uint64_t h, const LevelResult& level) {
  h = fnv1a_double(h, level.energy_kwh);
  h = fnv1a_double(h, level.p50_ms);
  h = fnv1a_double(h, level.p99_ms);
  h = fnv1a_double(h, level.p999_ms);
  const serve::ServeStats& s = level.stats;
  h = fnv1a_u64(h, s.generated);
  h = fnv1a_u64(h, s.admitted);
  h = fnv1a_u64(h, s.completed);
  h = fnv1a_u64(h, s.dropped_overload);
  h = fnv1a_u64(h, s.dropped_unroutable);
  h = fnv1a_u64(h, s.dropped_lost);
  h = fnv1a_u64(h, s.slo_violations);
  h = fnv1a_u64(h, s.slo_violations_critical);
  h = fnv1a_u64(h, s.stalls);
  h = fnv1a_double(h, s.latency_sum_s);
  h = fnv1a_double(h, s.max_latency_s);
  return fnv1a_u64(h, level.outstanding);
}

LevelResult run_level(double guard, const Options& options) {
  const Seconds horizon{options.hours * 3600.0};

  core::EcosystemConfig eco;
  eco.nodes = options.nodes;
  eco.enable_eop = true;
  eco.guard_percent = guard;
  eco.shmoo.runs = 1;
  // Checkpointing turns survivable SDC kills into restores — the 8 s
  // dispatch stall the tail measurement is about.
  eco.hv.vm_checkpointing = true;
  eco.cloud.tick = Seconds{60.0};
  eco.cloud.serve.enabled = true;
  eco.cloud.serve.seed = kStackSeed ^ 0x5E12F00DULL;

  // Identical seeds at every level: the workload, the fleet and the
  // characterized crash offsets are the same everywhere — only the
  // guard band (and everything downstream of it) differs.
  core::Ecosystem ecosystem(eco, kStackSeed);
  trace::ArrivalConfig arrivals;
  arrivals.arrivals_per_hour = options.nodes * 3.0;
  arrivals.mean_lifetime = Seconds{2.0 * 3600.0};
  trace::VmArrivalStream stream(arrivals, kTraceSeed);
  ecosystem.run(stream.generate(horizon), horizon);

  const osk::Cloud& cloud = ecosystem.cloud();
  const serve::ServeLayer& layer = *cloud.serving();
  LevelResult level;
  level.guard = guard;
  level.energy_kwh = cloud.stats().total_energy_kwh;
  level.p50_ms = layer.latency_percentile_ms(50.0);
  level.p99_ms = layer.latency_percentile_ms(99.0);
  level.p999_ms = layer.latency_percentile_ms(99.9);
  level.stats = layer.stats();
  level.outstanding = layer.outstanding();
  level.books = fuzz::serve_books_balance(level.stats, level.outstanding);
  return level;
}

struct SweepRun {
  std::vector<LevelResult> levels;
  std::uint64_t digest{kFnvOffset};
  double wall_s{0.0};
};

SweepRun run_sweep(const Options& options, unsigned jobs) {
  par::set_default_jobs(jobs);
  SweepRun run;
  const auto start = std::chrono::steady_clock::now();
  run.levels = par::parallel_map<LevelResult>(
      kGuards.size(),
      [&options](std::size_t i) { return run_level(kGuards[i], options); });
  run.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  for (const LevelResult& level : run.levels) {
    run.digest = digest_level(run.digest, level);
  }
  par::set_default_jobs(0);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      options.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      options.hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    }
  }
  if (options.smoke) {
    options.nodes = 8;
    options.hours = 6.0;
  }
  if (options.jobs == 0 || options.jobs == 1) options.jobs = 4;

  std::printf("request-tail sweep: %zu guard levels, %d nodes, %.1f h\n",
              kGuards.size(), options.nodes, options.hours);

  // Determinism first: the whole sweep, serial vs parallel.
  const SweepRun serial = run_sweep(options, 1);
  const SweepRun parallel = run_sweep(options, options.jobs);
  const bool identical = serial.digest == parallel.digest;

  bool books = true;
  std::uint64_t requests = 0;
  for (const LevelResult& level : parallel.levels) {
    books = books && level.books;
    requests += level.stats.completed;
  }
  // The Pareto clause: every extra percent of reclaimed guard must buy
  // energy (strictly) and may only cost tail latency — and across the
  // whole sweep the tail must actually move, or the bench is not
  // exercising the coupling it exists to measure. Adjacent fault-free
  // levels differ only by placement noise, so the pairwise check
  // tolerates 1% of p99 jitter; the sweep-wide check demands a 1.5x
  // fatter tail at the aggressive end.
  bool monotone = true;
  for (std::size_t i = 1; i < parallel.levels.size(); ++i) {
    monotone = monotone &&
               parallel.levels[i].energy_kwh <
                   parallel.levels[i - 1].energy_kwh &&
               parallel.levels[i].p99_ms >=
                   0.99 * parallel.levels[i - 1].p99_ms;
  }
  monotone = monotone && parallel.levels.back().p99_ms >
                             1.5 * parallel.levels.front().p99_ms;
  const double requests_per_s =
      parallel.wall_s > 0.0
          ? static_cast<double>(requests) / parallel.wall_s
          : 0.0;

  TextTable table("Energy vs tail latency, " +
                  std::to_string(options.nodes) + " nodes, " +
                  TextTable::num(options.hours, 1) + " h");
  table.set_header({"guard [%]", "energy [kWh]", "p50 [ms]", "p99 [ms]",
                    "p99.9 [ms]", "SLO viol", "restores+hits"});
  for (const LevelResult& level : parallel.levels) {
    table.add_row({TextTable::num(level.guard, 1),
                   TextTable::num(level.energy_kwh, 3),
                   TextTable::num(level.p50_ms, 1),
                   TextTable::num(level.p99_ms, 1),
                   TextTable::num(level.p999_ms, 1),
                   std::to_string(level.stats.slo_violations),
                   std::to_string(level.stats.stalls)});
  }
  table.print();
  std::printf("completed %llu requests in %.2f s (%.0f requests/s)\n",
              static_cast<unsigned long long>(requests), parallel.wall_s,
              requests_per_s);
  std::printf("pareto %s, books %s, jobs 1 vs %u digest %s\n",
              monotone ? "monotone" : "NON-MONOTONE",
              books ? "balanced" : "OUT OF BALANCE", options.jobs,
              identical ? "identical" : "DIVERGED");

  std::FILE* json = std::fopen(options.out.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"request_tail\",\n"
                 "  \"nodes\": %d,\n"
                 "  \"hours\": %.1f,\n"
                 "  \"levels\": %zu,\n"
                 "  \"smoke\": %s,\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"requests\": %llu,\n"
                 "  \"requests_per_s\": %.1f,\n"
                 "  \"pareto_monotone\": %s,\n"
                 "  \"books_balanced\": %s,\n"
                 "  \"identical\": %s",
                 options.nodes, options.hours, kGuards.size(),
                 options.smoke ? "true" : "false", parallel.wall_s,
                 static_cast<unsigned long long>(requests), requests_per_s,
                 monotone ? "true" : "false", books ? "true" : "false",
                 identical ? "true" : "false");
    for (std::size_t i = 0; i < parallel.levels.size(); ++i) {
      const LevelResult& level = parallel.levels[i];
      std::fprintf(json,
                   ",\n"
                   "  \"l%zu_guard\": %.1f,\n"
                   "  \"l%zu_energy_kwh\": %.6f,\n"
                   "  \"l%zu_p99_ms\": %.3f,\n"
                   "  \"l%zu_p999_ms\": %.3f,\n"
                   "  \"l%zu_slo_violations\": %llu",
                   i, level.guard, i, level.energy_kwh, i, level.p99_ms, i,
                   level.p999_ms, i,
                   static_cast<unsigned long long>(
                       level.stats.slo_violations));
    }
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", options.out.c_str());
  }

  if (!books) {
    std::printf("\nFAIL: serving-layer books out of balance\n");
    return 1;
  }
  if (!identical) {
    std::printf("\nFAIL: sweep digest diverged across --jobs\n");
    return 1;
  }
  if (!monotone) {
    std::printf("\nFAIL: energy-vs-p99 frontier is not monotone\n");
    return 1;
  }
  std::printf(
      "\nfrontier: %.3f kWh / p99 %.1f ms (guard %.0f%%) -> %.3f kWh / "
      "p99 %.1f ms (guard %.0f%%)\n",
      parallel.levels.front().energy_kwh, parallel.levels.front().p99_ms,
      parallel.levels.front().guard, parallel.levels.back().energy_kwh,
      parallel.levels.back().p99_ms, parallel.levels.back().guard);
  return 0;
}
