// Ablation: GA stress viruses vs real workloads (paper §3.B).
//
// The claim: evolved diagnostic viruses represent a pathogenic worst
// case — they crash the part at a *higher* voltage (smaller margin)
// than any real workload, so margins characterized from viruses are
// safe for every benchmark, and real workloads would in fact tolerate
// even deeper undervolts.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "hwmodel/chip.h"
#include "hwmodel/eop.h"
#include "hwmodel/chip_spec.h"
#include "stress/genetic.h"
#include "stress/kernels.h"
#include "stress/profiles.h"

using namespace uniserver;

int main() {
  const hw::ChipSpec spec = hw::arm_soc_spec();
  hw::Chip chip(spec, 77);

  stress::GaConfig config;
  config.population = 32;
  config.generations = 40;
  stress::GeneticVirusSearch search(chip, config);
  Rng rng(77);
  const stress::GaResult result = search.run(rng);

  const double virus_margin = hw::undervolt_percent(
      spec.vdd_nominal,
      chip.system_crash_voltage(result.best, spec.freq_nominal));

  TextTable table("GA virus vs real workloads (ARM SoC, first-core crash)");
  table.set_header(
      {"workload", "crash offset", "headroom beyond virus margin"});
  double min_bench_margin = 1e9;
  for (const auto& w : stress::spec2006_profiles()) {
    const double margin = hw::undervolt_percent(
        spec.vdd_nominal, chip.system_crash_voltage(w, spec.freq_nominal));
    min_bench_margin = std::min(min_bench_margin, margin);
    table.add_row({w.name, "-" + TextTable::pct(margin),
                   TextTable::pct(margin - virus_margin)});
  }
  for (const auto& kernel : stress::builtin_kernels()) {
    const double margin = hw::undervolt_percent(
        spec.vdd_nominal,
        chip.system_crash_voltage(kernel.signature, spec.freq_nominal));
    table.add_row({kernel.name + " (hand-coded)", "-" + TextTable::pct(margin),
                   TextTable::pct(margin - virus_margin)});
  }
  table.add_row({"GA-evolved virus", "-" + TextTable::pct(virus_margin),
                 "0.0% (reference)"});
  table.print();

  std::printf("\nGA fitness (crash voltage) progress: gen0 %.4f V -> final "
              "%.4f V over %zu generations\n",
              result.history.front(), result.best_fitness,
              result.history.size());
  std::printf(
      "virus margin %.1f%% < every real workload's margin (min %.1f%%): "
      "virus-derived safe margins upper-bound real workloads %s\n",
      virus_margin, min_bench_margin,
      virus_margin <= min_bench_margin ? "[OK]" : "[VIOLATED]");
  return 0;
}
