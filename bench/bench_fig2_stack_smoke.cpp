// Figure 2 is the architecture diagram of the cross-layer ecosystem;
// this harness exercises the whole wiring end-to-end as a smoke test:
// pre-deployment StressLog characterization on every node, margin
// application, a morning of VM traffic through the OpenStack layer
// with HealthLog-fed failure prediction, and the security analysis of
// the chosen EOP.
#include <cstdio>

#include "common/table.h"
#include "core/ecosystem.h"
#include "core/security.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"

using namespace uniserver;
using namespace uniserver::literals;

int main() {
  core::EcosystemConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.nodes = 4;
  config.enable_eop = true;
  config.guard_percent = 1.0;
  config.shmoo.runs = 1;
  config.cloud.policy = osk::SchedulerPolicy::kReliabilityAware;
  config.cloud.tick = 60_s;

  core::Ecosystem ecosystem(config, 1);
  ecosystem.commission();

  const auto summary = ecosystem.summary(stress::ldbc_profile());
  std::printf("== Figure 2 stack smoke: 4-node UniServer fleet ==\n");
  std::printf("commissioned EOP: mean undervolt %.1f%%, mean refresh %.2f s, "
              "fleet power saving vs nominal %.1f%%\n\n",
              summary.mean_undervolt_percent, summary.mean_refresh_s,
              summary.fleet_power_saving * 100.0);

  trace::ArrivalConfig arrivals_config;
  arrivals_config.arrivals_per_hour = 20.0;
  trace::VmArrivalStream stream(arrivals_config, 3);
  const auto requests = stream.generate(Seconds{4.0 * 3600.0});
  ecosystem.run(requests, Seconds{4.0 * 3600.0});

  const osk::CloudStats stats = ecosystem.cloud().stats();
  TextTable table("4 h of traffic through the commissioned fleet");
  table.set_header({"metric", "value"});
  table.add_row({"VM requests submitted", std::to_string(stats.submitted)});
  table.add_row({"accepted", std::to_string(stats.accepted)});
  table.add_row({"completed", std::to_string(stats.completed)});
  table.add_row({"VM survival rate",
                 TextTable::pct(stats.vm_survival_rate() * 100.0, 2)});
  table.add_row({"node crash events",
                 std::to_string(stats.node_crash_events)});
  table.add_row({"proactive migrations", std::to_string(stats.migrations)});
  table.add_row({"fleet energy [kWh]",
                 TextTable::num(stats.total_energy_kwh, 2)});
  table.add_row({"mean node availability",
                 TextTable::pct(stats.mean_node_availability * 100.0, 2)});
  table.print();

  // Security view of the commissioned operating point (innovation viii).
  core::SecurityAnalyzer analyzer;
  osk::ComputeNode* node = ecosystem.cloud().node_ptrs().front();
  const auto assessment = analyzer.analyze(
      node->server().spec().chip, node->server().spec().dimm,
      node->server().eop(), config.hv.use_reliable_domain);
  std::printf("\nsecurity threats at the commissioned EOP:\n");
  for (const auto& threat : assessment.threats) {
    std::printf("  [%.2f] %-22s -> %s\n", threat.severity,
                to_string(threat.kind), threat.countermeasure.c_str());
  }
  std::printf("max severity %.2f, residual risk after countermeasures %.3f\n",
              assessment.max_severity(), assessment.residual_risk());
  return 0;
}
