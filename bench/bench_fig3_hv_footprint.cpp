// Reproduces Figure 3: "Memory footprint of Hypervisor, VMs and
// Application".
//
// Four VMs each run the LDBC Social Network Benchmark (graph database)
// with staggered starts; the hypervisor footprint is tracked against
// total utilized memory over two hours. The paper's observation: the
// hypervisor footprint (red line) stays below 7% of utilized memory,
// so hosting the whole hypervisor in the reliable (nominal-refresh)
// memory domain is cheap.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "hwmodel/chip_spec.h"
#include "hwmodel/platform.h"
#include "hypervisor/hypervisor.h"
#include "trace/ldbc.h"

using namespace uniserver;
using namespace uniserver::literals;

int main() {
  hw::NodeSpec node_spec;
  node_spec.chip = hw::arm_soc_spec();
  hw::ServerNode server(node_spec, 5);
  hv::HvConfig hv_config;
  hv::Hypervisor hypervisor(server, hv_config, 5);

  trace::LdbcConfig ldbc_config;
  std::vector<trace::LdbcWorkload> workloads;
  Rng rng(5);
  for (std::uint64_t vm_id = 1; vm_id <= 4; ++vm_id) {
    workloads.emplace_back(ldbc_config, rng.next());
    hv::Vm vm;
    vm.id = vm_id;
    vm.name = "ldbc-vm-" + std::to_string(vm_id);
    vm.vcpus = 2;
    vm.memory_mb = ldbc_config.base_memory_mb;
    vm.workload = workloads.back().signature();
    // Staggered starts: 3 minutes apart.
    vm.started_at = Seconds{180.0 * static_cast<double>(vm_id - 1)};
    hypervisor.create_vm(vm);
  }

  TextTable table("Figure 3: hypervisor footprint vs total utilized memory");
  table.set_header({"t [min]", "VM memory [MB]", "HV footprint [MB]",
                    "total utilized [MB]", "HV share"});
  double max_share = 0.0;
  const Seconds horizon{7200.0};
  for (Seconds t{0.0}; t <= horizon; t += 60_s) {
    double vm_mb = 0.0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto& vm = hypervisor.vms().at(static_cast<std::uint64_t>(i + 1));
      const double since_start =
          std::max(0.0, t.value - vm.started_at.value);
      const double mb = workloads[i].memory_mb(Seconds{since_start});
      hypervisor.update_vm_memory(vm.id, mb);
      vm_mb += mb;
    }
    const double share = hypervisor.hypervisor_share();
    max_share = std::max(max_share, share);
    if (static_cast<long>(t.value) % 600 == 0) {
      table.add_row({TextTable::num(t.value / 60.0, 0),
                     TextTable::num(vm_mb, 0),
                     TextTable::num(hypervisor.hypervisor_footprint_mb(), 0),
                     TextTable::num(hypervisor.total_utilized_mb(), 0),
                     TextTable::pct(share * 100.0)});
    }
  }
  table.print();
  std::printf("\nmax hypervisor share over the run: %.1f%% (paper: always "
              "< 7%%) -> whole hypervisor fits the reliable domain\n",
              max_share * 100.0);
  std::printf("reliable domain backing it: %d of %d channels "
              "(%.0f MB pinned at nominal refresh for a %.0f MB peak "
              "footprint)\n",
              hypervisor.domains().reliable_channels(),
              server.memory().channels(),
              hypervisor.domains().reliable_capacity_mb(),
              hypervisor.hypervisor_footprint_mb());
  return 0;
}
