// Ablation A5: adaptive re-characterization vs characterize-once
// margins under aging (paper §3: the StressLog "will be spawned either
// periodically during a machines lifetime (e.g. every 2-3 months) or
// will be triggered ... in the case of erratic or anomalous machine
// behavior ... useful to better adapt ... to the aging of the system").
//
// A fast-wearing part serves a constant VM load for an accelerated
// multi-year deployment. The static configuration keeps its day-one
// margins; the adaptive one re-runs the StressLog on the paper's
// quarterly schedule. Reported: crashes, re-characterizations, and the
// margin trajectory.
#include <cstdio>

#include "common/table.h"
#include "core/lifecycle.h"
#include "hwmodel/chip_spec.h"
#include "stress/profiles.h"

using namespace uniserver;

namespace {

constexpr double kDay = 24.0 * 3600.0;

core::LifecycleStats run_once(bool adaptive, double guard_percent) {
  core::UniServerConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.node_spec.chip.variation.aging_loss_at_year = 0.08;  // fast wear
  config.shmoo.runs = 1;
  config.guard_percent = guard_percent;
  config.auto_recharacterize = adaptive;
  // Core isolation would evict the service VM once the aging canary
  // fires (leaving an idle node that cannot crash) and mask the
  // margins-vs-aging effect; it is ablated separately (A8).
  config.hv.core_isolation_threshold_per_hour = 1e12;
  config.predictor_epochs = 10;

  core::UniServerNode node(config, 62);
  node.server().advance_age(Seconds{365.0 * kDay});  // one service year

  hv::Vm vm;
  vm.id = 1;
  vm.vcpus = 6;
  vm.memory_mb = 8192.0;
  vm.workload = stress::ldbc_profile();
  node.hypervisor().create_vm(vm);

  core::LifecycleConfig lifecycle;
  lifecycle.tick = Seconds{1800.0};
  lifecycle.horizon = Seconds{7.0 * kDay};
  lifecycle.aging_acceleration = 400.0;  // ~7.7 further years of wear
  lifecycle.periodic_recharacterization =
      adaptive ? Seconds{0.25 * kDay} : Seconds{0.0};  // "quarterly"
  lifecycle.adaptive = adaptive;
  core::LifecycleRunner runner(node, lifecycle);
  return runner.run();
}

}  // namespace

int main() {
  std::printf("== Ablation A5: margins vs aging (ARM SoC, 8.7 accelerated "
              "years, fast-wear part) ==\n\n");
  TextTable table("adaptive (StressLog re-runs) vs static (characterize once)");
  table.set_header({"configuration", "guard", "re-characterizations",
                    "node crashes", "VM kills", "final undervolt",
                    "margin lost to aging"});
  for (const double guard : {0.3, 1.0}) {
    for (const bool adaptive : {false, true}) {
      const core::LifecycleStats stats = run_once(adaptive, guard);
      table.add_row({adaptive ? "adaptive" : "static",
                     TextTable::pct(guard, 1),
                     std::to_string(stats.recharacterizations),
                     std::to_string(stats.node_crashes),
                     std::to_string(stats.vm_kills),
                     TextTable::pct(stats.final_undervolt_percent, 1),
                     TextTable::pct(stats.aging_loss_percent, 1)});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: the static margins age into the crash zone; the "
      "adaptive node backs its EOP off as the silicon wears and stays "
      "crash-free (at the cost of periodic offline cycles).\n");
  return 0;
}
