// Ablation A3: scheduling policy x proactive migration (paper §4.B:
// new scheduling policies + the integrated fault-tolerance component
// that proactively migrates workloads off nodes predicted to fail).
//
// Failure risk must be heterogeneous for prediction to matter: an
// 8-node fleet is commissioned normally, then two nodes develop weak
// DRAM retention (aged parts stuck at a 5 s refresh interval), turning
// them into error fountains. A day of VM arrivals is played against
// each (policy, migration) combination; the log-based failure
// predictor sees the nodes' HealthLog streams and the reliability-aware
// policy additionally consumes the per-node reliability metric.
#include <cstdio>

#include "common/table.h"
#include "core/ecosystem.h"
#include "hwmodel/chip_spec.h"

using namespace uniserver;
using namespace uniserver::literals;

namespace {

osk::CloudStats run_config(osk::SchedulerPolicy policy, bool migration,
                           const std::vector<trace::VmRequest>& requests) {
  core::EcosystemConfig config;
  config.node_spec.chip = hw::arm_soc_spec();
  config.nodes = 8;
  config.enable_eop = true;
  config.guard_percent = 1.0;
  config.shmoo.runs = 1;
  config.hv.use_reliable_domain = true;
  config.hv.selective_protection = true;
  // The aged nodes must stay error fountains: self-healing via channel
  // isolation (ablated in A8) would erase the heterogeneity that the
  // scheduling/migration policies are being tested against.
  config.hv.channel_isolation_threshold_per_hour = 1e12;
  config.cloud.policy = policy;
  config.cloud.proactive_migration = migration;
  config.cloud.tick = 60_s;
  // Routine single errors must not trigger evacuation; the aged nodes
  // blow far past this threshold within minutes.
  config.cloud.predictor.evacuation_score = 60.0;
  config.cloud.predictor.risk_scale = 500.0;

  core::Ecosystem ecosystem(config, 4242);
  ecosystem.commission();
  // Two parts have aged: their retention margin is gone but the margin
  // table still allows the old relaxed refresh — the exact situation
  // the HealthLog/StressLog loop exists for.
  auto nodes = ecosystem.cloud().node_ptrs();
  for (int bad : {0, 1}) {
    hw::Eop eop = nodes[static_cast<std::size_t>(bad)]->server().eop();
    eop.refresh = Seconds{5.0};
    nodes[static_cast<std::size_t>(bad)]->server().set_eop(eop);
  }
  ecosystem.run(requests, Seconds{24.0 * 3600.0});
  return ecosystem.cloud().stats();
}

}  // namespace

int main() {
  trace::ArrivalConfig arrivals_config;
  arrivals_config.arrivals_per_hour = 12.0;
  arrivals_config.mean_lifetime = Seconds{3.0 * 3600.0};
  trace::VmArrivalStream stream(arrivals_config, 99);
  const auto requests = stream.generate(Seconds{24.0 * 3600.0});

  TextTable table(
      "Ablation A3: policy x proactive migration (8 nodes, 2 aged, 24 h)");
  table.set_header({"policy", "migration", "accepted", "VM survival",
                    "SLA violations", "lost to errors", "migrations",
                    "mean availability"});
  for (const auto policy : {osk::SchedulerPolicy::kFirstFit,
                            osk::SchedulerPolicy::kLeastLoaded,
                            osk::SchedulerPolicy::kReliabilityAware}) {
    for (const bool migration : {false, true}) {
      const osk::CloudStats stats = run_config(policy, migration, requests);
      table.add_row(
          {to_string(policy), migration ? "on" : "off",
           std::to_string(stats.accepted),
           TextTable::pct(stats.vm_survival_rate() * 100.0),
           std::to_string(stats.sla_violations),
           std::to_string(stats.lost_to_errors),
           std::to_string(stats.migrations),
           TextTable::pct(stats.mean_node_availability * 100.0, 2)});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: reliability-aware placement avoids the aged nodes "
      "up front and proactive migration rescues the VMs that still land "
      "there; first-fit without migration keeps feeding them.\n");
  return 0;
}
